//! The TCP front end: connection serving, and the clock that maps wall
//! time onto simulation time.
//!
//! Concurrency model (DESIGN.md §10.5, §10.7): the request path is split
//! into two lanes, and the write lane is **sharded**.
//!
//! * **Write lane** — `submit` and `drain` (plus the ticker's clock
//!   advances) are commands on *bounded* FIFO queues, one per shard,
//!   each drained by a single driver-owner thread. Every shard's
//!   [`OnlineDriver`] is owned by its thread outright — there is no
//!   mutex to convoy on — so mutations are serialized per shard, with
//!   FIFO fairness across connections and explicit backpressure (a full
//!   queue blocks the submitting client, not the whole service). The
//!   [`crate::router::Router`] decides which shard a submit lands on;
//!   `drain` goes to a coordinator thread that runs the two-phase
//!   federated drain.
//! * **Read lane** — `ping`, `status`, `metrics`, `snapshot` are served
//!   from per-shard [`SnapshotCell`]s: immutable [`StateSnapshot`]s each
//!   owner thread re-publishes after every mutation (and at every
//!   boundary of a drain). Read handlers hold no driver reference at all
//!   — the type split in [`wire::handle_read`] makes touching the driver
//!   impossible — so a drain running the simulation dry or a fat submit
//!   cannot stall a monitoring client. Staleness is bounded by one
//!   mutation per shard. With more than one shard the router aggregates
//!   the per-shard views into one federated reply (DESIGN.md §10.7).
//!
//! Two **front ends** serve connections against those lanes
//! (DESIGN.md §10.6), selected by [`ServerConfig::frontend`]:
//!
//! * [`Frontend::Threads`] — one blocking handler thread per
//!   connection. Portable, simple, and fine up to a few hundred
//!   sockets.
//! * [`Frontend::Reactor`] — a small fixed pool of epoll event-loop
//!   threads (linux only; the platform default there). Reads are
//!   answered inline on the reactor thread; writes funnel into the
//!   per-shard command queues with replies delivered back through a
//!   per-thread inbox. Thread count is independent of connection count.
//!
//! Both front ends share [`route_line`] and the [`FrameBuffer`] framing
//! state machine, and both resolve a queued request's target shard
//! exactly once (through [`crate::router::Router::plan`]), so reply
//! bytes, reason tokens, and shard assignment are identical whichever
//! serves the socket.
//!
//! `ServerConfig::read_cache` is the A/B off-switch: with it off, reads
//! are routed through the (single) command queue too, restoring the old
//! serialize-everything behavior (`dsp bench --service` measures the
//! difference; `dspd --read-cache off` exposes it operationally). The
//! off-switch requires `shards == 1`.
//!
//! **Time**: the simulation clock runs at `time_scale` simulated seconds
//! per wall second. The paper's cadences (300 s scheduling period, 5 s
//! epoch) would make interactive use glacial in real time; a scale of,
//! say, 600 crosses a scheduling period every half wall-second while
//! keeping event order identical to an offline run at the same instants.

use crate::admission::AdmissionConfig;
use crate::codec::{FrameBuffer, Snapshot};
use crate::driver::OnlineDriver;
use crate::router::{coordinate, RoutePolicy, Router, ShardHandle};
use crate::shard::{run_shard, Publisher};
use crate::state::StateSnapshot;
use crate::wire;
use dsp_cluster::ClusterSpec;
use dsp_sim::EngineConfig;
use dsp_units::Dur;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard ceiling on the shard count: the reroute path tracks visited
/// shards in a `u64` bitmask (see [`crate::router::Router`]).
pub const MAX_SHARDS: usize = 64;

/// Which connection-serving machinery fronts the two request lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// One blocking handler thread per connection (portable default).
    Threads,
    /// Fixed pool of epoll event-loop threads (linux only).
    Reactor,
}

impl Frontend {
    /// The default for this build target: `reactor` on linux, `threads`
    /// everywhere else.
    pub fn platform_default() -> Frontend {
        if cfg!(target_os = "linux") {
            Frontend::Reactor
        } else {
            Frontend::Threads
        }
    }

    /// Parse a `--frontend` CLI value.
    pub fn parse(s: &str) -> Option<Frontend> {
        match s {
            "threads" => Some(Frontend::Threads),
            "reactor" => Some(Frontend::Reactor),
            _ => None,
        }
    }

    /// The CLI name (`threads` / `reactor`).
    pub fn name(self) -> &'static str {
        match self {
            Frontend::Threads => "threads",
            Frontend::Reactor => "reactor",
        }
    }
}

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound address
    /// is reported on the returned handle).
    pub addr: String,
    /// Simulated seconds per wall-clock second.
    pub time_scale: f64,
    /// Wall interval between driver advances.
    pub tick: Duration,
    /// Serve reads from the published snapshot cache (the default). Off
    /// routes reads through the command queue — the serialize-everything
    /// baseline kept for A/B measurement (`--read-cache off`). Requires
    /// `shards == 1`.
    pub read_cache: bool,
    /// Bound on queued write commands **per shard**; a full queue blocks
    /// the sender.
    pub queue_depth: usize,
    /// Connection-serving front end (see [`Frontend`]).
    pub frontend: Frontend,
    /// Accepted-connection cap; excess connections are shed with a
    /// `busy` reason token. 0 = unlimited.
    pub max_conns: usize,
    /// Reactor pool size; 0 = auto (min(available cores, 4)).
    pub reactor_threads: usize,
    /// Per-frame byte limit; 0 = [`crate::codec::DEFAULT_MAX_FRAME`].
    pub max_frame: usize,
    /// Shard count for [`serve_federated`]: the cluster is split into
    /// this many independent engine+driver partitions (clamped to the
    /// node count and [`MAX_SHARDS`]). [`serve`] requires 1.
    pub shards: usize,
    /// Placement policy the router uses to assign submit batches to
    /// shards (see [`RoutePolicy`]). Irrelevant at `shards == 1`.
    pub route: RoutePolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            time_scale: 600.0,
            tick: Duration::from_millis(10),
            read_cache: true,
            queue_depth: 128,
            frontend: Frontend::platform_default(),
            max_conns: 0,
            reactor_threads: 0,
            max_frame: 0,
            shards: 1,
            route: RoutePolicy::Hash,
        }
    }
}

/// Everything needed to build one shard's [`OnlineDriver`]. The
/// scheduler and policy are factories because each shard owns its own
/// instances outright (they are stateful and `Send`, not `Sync`).
pub struct FederationSpec {
    /// The full cluster inventory; [`ClusterSpec::split`] partitions it.
    pub cluster: ClusterSpec,
    /// Engine cadence knobs, shared by every shard.
    pub engine: EngineConfig,
    /// Offline scheduling period, shared by every shard.
    pub sched_period: Dur,
    /// Admission bounds, applied **per shard** (`max_pending_tasks` is a
    /// per-shard queue bound, so total buffering scales with the shard
    /// count).
    pub admission: AdmissionConfig,
    /// Per-shard offline scheduler factory.
    pub scheduler: Box<dyn Fn() -> Box<dyn dsp_sched::Scheduler + Send>>,
    /// Per-shard preemption policy factory.
    pub policy: Box<dyn Fn() -> Box<dyn dsp_sim::PreemptPolicy + Send>>,
}

/// One unit of work for a driver-owner (or coordinator) thread.
pub(crate) enum Command {
    /// A client mutation; the response goes back through the sink. The
    /// `u64` is the reroute bitmask: shards that already refused this
    /// submit because they were quiesced (0 on first dispatch).
    Write(wire::WriteRequest, ReplySink, u64),
    /// A client read in `read_cache: false` mode: answered from the
    /// published snapshot, but only after every earlier command — the
    /// old mutex-convoy behavior, preserved for A/B benchmarks.
    ReadThrough(wire::ReadRequest, ReplySink),
    /// The ticker mapping wall time onto simulation time.
    Tick(dsp_units::Time),
    /// Stop admitting on this shard (phase one of the federated drain);
    /// ack once the refusal is in force and published.
    Quiesce(SyncSender<()>),
    /// Run this shard's simulation dry and hand back its final snapshot
    /// (phase two of the federated drain).
    DrainShard(SyncSender<Box<Snapshot>>),
}

/// Where a routed command is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// Shard `i`'s driver-owner queue.
    Shard(usize),
    /// The drain coordinator's queue.
    Coordinator,
}

/// A command with its resolved destination. Routing happens exactly once
/// (in [`Router::plan`]); a front end that must park a command under
/// queue backpressure re-sends the *same* dispatch, so backpressure can
/// never change a request's shard assignment.
pub(crate) struct Dispatch {
    pub(crate) target: Target,
    pub(crate) command: Command,
}

/// Where the driver-owner thread sends a command's response.
pub(crate) enum ReplySink {
    /// A blocked connection-handler thread (threads front end).
    Blocking(SyncSender<wire::Response>),
    /// A reactor thread's inbox (the connection is identified by the
    /// handle's token; delivery wakes the event loop).
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReplyHandle),
}

impl ReplySink {
    /// Deliver the response. Infallible: a vanished recipient (client
    /// hung up mid-call) must never kill the driver-owner thread.
    pub(crate) fn deliver(self, response: wire::Response) {
        match self {
            ReplySink::Blocking(tx) => {
                let _ = tx.send(response);
            }
            #[cfg(target_os = "linux")]
            ReplySink::Reactor(handle) => handle.deliver(response),
        }
    }
}

/// A running service instance.
pub struct ServerHandle {
    /// The actually-bound address (resolves ephemeral ports).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    frontend_threads: Vec<JoinHandle<()>>,
    ticker_thread: Option<JoinHandle<()>>,
    owner_threads: Vec<JoinHandle<()>>,
    coordinator_thread: Option<JoinHandle<()>>,
}

/// What every connection handler can see: the router over the per-shard
/// command queues and snapshot cells, and the stop flag. Deliberately
/// **not** the drivers — only their owner threads hold those.
pub(crate) struct Shared {
    pub(crate) router: Router,
    pub(crate) read_cache: bool,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        // ordering: SeqCst — a plain shutdown latch, never paired with other
        // data; flipped once, read in accept/handler loops. Not hot enough
        // to justify reasoning about a weaker ordering.
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn stop(&self) {
        // ordering: SeqCst — see `stopping`; the store publishes nothing
        // beyond the flag itself.
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Send one command and wait for its reply. Errors (owner gone mid-
    /// shutdown) surface as a `draining` refusal rather than a hang.
    fn roundtrip(&self, request: QueuedRequest) -> wire::Response {
        let (reply_tx, reply_rx) = sync_channel(1);
        let dispatch = self.router.plan(request, ReplySink::Blocking(reply_tx));
        if self.router.send(dispatch).is_ok() {
            if let Ok(response) = reply_rx.recv() {
                return response;
            }
        }
        draining_response()
    }
}

/// The refusal handed out when the driver-owner thread is already gone.
pub(crate) fn draining_response() -> wire::Response {
    wire::Response {
        body: wire::error_response("draining", "service is shutting down"),
        shutdown: false,
    }
}

/// A routed request that must go through a command queue.
pub(crate) enum QueuedRequest {
    Write(wire::WriteRequest),
    Read(wire::ReadRequest),
}

/// The outcome of routing one request line.
pub(crate) enum Routed {
    /// Answered without touching a driver: a cached read or a parse
    /// failure. Never carries `shutdown`.
    Immediate(wire::Response),
    /// Must be serialized through a driver-owner thread.
    Queue(QueuedRequest),
}

/// Route one request line against the two lanes. This is the single
/// routing point shared by both front ends — reply bytes and reason
/// tokens cannot diverge between them because they both come from here.
pub(crate) fn route_line(line: &str, shared: &Shared) -> Routed {
    match wire::parse_request(line) {
        // The read lane: answered from the published snapshots alone.
        // This arm has no path to a driver — the router only ever hands
        // `handle_read` the immutable views.
        Ok(wire::Request::Read(request)) if shared.read_cache => {
            Routed::Immediate(shared.router.handle_read(request))
        }
        // A/B baseline: reads serialized behind the write queue.
        Ok(wire::Request::Read(request)) => Routed::Queue(QueuedRequest::Read(request)),
        Ok(wire::Request::Write(request)) => Routed::Queue(QueuedRequest::Write(request)),
        Err(msg) => Routed::Immediate(wire::Response {
            body: wire::error_response("bad_request", &msg),
            shutdown: false,
        }),
    }
}

/// Serialize a response for the wire: one line, newline-terminated.
pub(crate) fn response_bytes(response: &wire::Response) -> Vec<u8> {
    let mut text = response.body.to_string();
    text.push('\n');
    text.into_bytes()
}

/// Best-effort `busy` shed for a connection over [`ServerConfig::max_conns`]:
/// one reply line, then close. The write is a single attempt — a peer
/// that can't take one line immediately just sees the close.
pub(crate) fn shed_busy(stream: &mut TcpStream, max_conns: usize) {
    let _ = stream.set_nonblocking(true);
    let response = wire::Response {
        body: wire::error_response(
            "busy",
            &format!("connection limit ({max_conns}) reached; retry later"),
        ),
        shutdown: false,
    };
    let _ = stream.write(&response_bytes(&response));
}

/// Boot a single-shard service around an already-built driver: bind,
/// start the driver-owner thread and the clock, start the selected front
/// end. Multi-shard federation needs the driver *factories* instead —
/// use [`serve_federated`]; this entry rejects `config.shards > 1`.
pub fn serve(driver: OnlineDriver, config: ServerConfig) -> std::io::Result<ServerHandle> {
    if config.shards > 1 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "serve() runs exactly one shard; use serve_federated() for --shards > 1",
        ));
    }
    let cluster = driver.cluster().clone();
    serve_inner(vec![driver], cluster, vec![0], config)
}

/// Boot the federated service: split the cluster into `config.shards`
/// partitions, build one [`OnlineDriver`] per partition on its own id
/// lane (shard `i` assigns ids `i, i+N, i+2N, …`), and stand a placement
/// router in front (DESIGN.md §10.7). At `shards == 1` this is the
/// pre-federation single-driver path, byte for byte.
pub fn serve_federated(
    spec: FederationSpec,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let shards = config.shards.clamp(1, MAX_SHARDS).min(spec.cluster.len().max(1));
    if shards > 1 && !config.read_cache {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "--read-cache off is a single-shard A/B baseline; it cannot federate",
        ));
    }
    let offsets = spec.cluster.split_offsets(shards);
    let drivers: Vec<OnlineDriver> = spec
        .cluster
        .split(shards)
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            OnlineDriver::new(
                part,
                spec.engine,
                spec.sched_period,
                (spec.scheduler)(),
                (spec.policy)(),
                spec.admission.clone(),
            )
            .with_id_lane(i as u32, shards as u32)
        })
        .collect();
    serve_inner(drivers, spec.cluster, offsets, config)
}

/// The common boot path: one command queue + owner thread + snapshot
/// cell per driver, a coordinator thread for federated drains, the
/// ticker, and the selected front end.
fn serve_inner(
    drivers: Vec<OnlineDriver>,
    full_cluster: ClusterSpec,
    offsets: Vec<u32>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // Seed every shard's read lane before the first connection can land.
    let mut handles = Vec::with_capacity(drivers.len());
    let mut shard_threads = Vec::with_capacity(drivers.len());
    for driver in drivers {
        let publisher = Publisher::seed(&driver);
        let (commands, command_rx) = sync_channel(config.queue_depth.max(1));
        handles.push(ShardHandle {
            commands,
            cell: publisher.cell(),
            cluster: driver.cluster().clone(),
        });
        shard_threads.push((driver, command_rx, publisher));
    }
    let (coordinator, coordinator_rx) = sync_channel(config.queue_depth.max(1));
    let router = Router::new(handles, coordinator, config.route, full_cluster, offsets);

    let shared = Arc::new(Shared {
        router,
        read_cache: config.read_cache,
        shutdown: AtomicBool::new(false),
    });

    // The front end boots before the driver-owner threads so a bad
    // configuration (reactor off-linux) fails `serve` without leaking
    // running owners.
    let frontend_threads = match config.frontend {
        Frontend::Threads => vec![spawn_threads_frontend(listener, Arc::clone(&shared), &config)],
        #[cfg(target_os = "linux")]
        Frontend::Reactor => crate::reactor::spawn(listener, Arc::clone(&shared), &config)?,
        #[cfg(not(target_os = "linux"))]
        Frontend::Reactor => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the reactor front end requires linux (epoll); use --frontend threads",
            ));
        }
    };

    let owner_threads = shard_threads
        .into_iter()
        .enumerate()
        .map(|(index, (driver, command_rx, publisher))| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_shard(index, driver, command_rx, publisher, &shared))
        })
        .collect();

    let coordinator_thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || coordinate(coordinator_rx, &shared))
    };

    let ticker_thread = {
        let shared = Arc::clone(&shared);
        let scale = config.time_scale.max(0.0);
        let tick = config.tick.max(Duration::from_millis(1));
        std::thread::spawn(move || {
            let start = Instant::now();
            while !shared.stopping() {
                std::thread::sleep(tick);
                let target = dsp_units::Time::from_secs_f64(start.elapsed().as_secs_f64() * scale);
                // Broadcast to every shard. A full queue means that
                // owner is busy with client work; skipping its tick is
                // fine — the next one re-targets.
                if !shared.router.tick_all(target) {
                    break;
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        frontend_threads,
        ticker_thread: Some(ticker_thread),
        owner_threads,
        coordinator_thread: Some(coordinator_thread),
    })
}

/// The thread-per-connection front end: a nonblocking accept loop that
/// spawns one handler thread per socket.
///
/// Failure handling: `WouldBlock` is the idle path (short fixed sleep);
/// every other accept error — `EMFILE`/`ENFILE` when the fd table is
/// full, `ECONNABORTED`, transient `ENOBUFS`… — backs off with a
/// bounded, doubling sleep instead of hot-spinning or silently killing
/// the accept loop. The loop only exits on the shutdown flag.
fn spawn_threads_frontend(
    listener: TcpListener,
    shared: Arc<Shared>,
    config: &ServerConfig,
) -> JoinHandle<()> {
    const IDLE_SLEEP: Duration = Duration::from_millis(5);
    const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
    const BACKOFF_CEIL: Duration = Duration::from_millis(500);
    let max_conns = config.max_conns;
    let max_frame = config.max_frame;
    std::thread::spawn(move || {
        let active = Arc::new(AtomicUsize::new(0));
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let mut backoff = BACKOFF_FLOOR;
        while !shared.stopping() {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    backoff = BACKOFF_FLOOR;
                    // ordering: Relaxed — the counter only gates admission;
                    // it publishes no data and an off-by-one race just sheds
                    // (or admits) one borderline connection.
                    if max_conns > 0 && active.load(Ordering::Relaxed) >= max_conns {
                        shed_busy(&mut stream, max_conns);
                        continue;
                    }
                    // Reap finished handlers so the vec stays bounded by the
                    // live-connection count (dropping a JoinHandle detaches).
                    handlers.retain(|h| !h.is_finished());
                    let ticket = ConnTicket::issue(&active);
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_client(stream, &shared, max_frame);
                        drop(ticket);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(IDLE_SLEEP);
                }
                Err(_) => {
                    // fd exhaustion or a transient kernel refusal: give
                    // handlers time to release resources, then try again.
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CEIL);
                }
            }
        }
        for h in handlers {
            let _ = h.join();
        }
    })
}

/// RAII decrement for the threads front end's live-connection counter.
struct ConnTicket(Arc<AtomicUsize>);

impl ConnTicket {
    fn issue(counter: &Arc<AtomicUsize>) -> ConnTicket {
        // ordering: Relaxed — admission gate only; see the accept loop.
        counter.fetch_add(1, Ordering::Relaxed);
        ConnTicket(Arc::clone(counter))
    }
}

impl Drop for ConnTicket {
    fn drop(&mut self) {
        // ordering: Relaxed — admission gate only; see the accept loop.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_client(stream: TcpStream, shared: &Shared, max_frame: usize) {
    // Connection I/O errors just drop the client; the service lives on.
    // The read timeout keeps idle connections from pinning the shutdown
    // join: the loop wakes periodically to check the stop flag.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut frames = FrameBuffer::new(max_frame);
    let mut chunk = [0u8; 8192];
    'conn: loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if let Some(bytes) = chunk.get(..n) {
                    frames.push(bytes);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        loop {
            let line = match frames.next_frame() {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable: reply once, then close.
                    let response = wire::Response {
                        body: wire::error_response("bad_request", &e.to_string()),
                        shutdown: false,
                    };
                    let _ = writer.write_all(&response_bytes(&response));
                    break 'conn;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let response = match route_line(&line, shared) {
                Routed::Immediate(response) => response,
                Routed::Queue(request) => shared.roundtrip(request),
            };
            if writer.write_all(&response_bytes(&response)).is_err() || writer.flush().is_err() {
                break 'conn;
            }
            if response.shutdown {
                break 'conn;
            }
        }
    }
}

impl ServerHandle {
    /// Shard 0's read-lane publish point — what `status`/`metrics`/
    /// `snapshot` are answered from on a single-shard service. Exposed
    /// for tests and in-process tooling; federated aggregation happens
    /// in the router, not here.
    pub fn reads(&self) -> Arc<StateSnapshot> {
        self.shared.router.primary_cell().load()
    }

    /// How many shards this instance is running.
    pub fn shards(&self) -> usize {
        self.shared.router.shard_count()
    }

    /// Quiesce one shard: stop its intake without draining it, as the
    /// federated drain's phase one does. Blocks until the shard has
    /// published the refusal; false when the index is out of range or
    /// the shard is gone. Exposed for the drain-vs-submit regression
    /// tests and for operational shedding experiments.
    pub fn quiesce_shard(&self, index: usize) -> bool {
        self.shared.router.quiesce_shard(index)
    }

    /// Has a drain (or explicit shutdown) been requested?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Request shutdown without draining (pending work is discarded).
    pub fn shutdown(&self) {
        self.shared.stop();
    }

    fn join_all(&mut self) {
        for h in self.frontend_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.ticker_thread.take() {
            let _ = h.join();
        }
        for h in self.owner_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.coordinator_thread.take() {
            let _ = h.join();
        }
    }

    /// Block until the front end, clock, and driver-owner threads exit
    /// (after a `drain` request or [`ServerHandle::shutdown`]).
    pub fn wait(mut self) {
        self.join_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.stop();
        self.join_all();
    }
}

/// Minimal blocking client for the line protocol — what `dsp submit/
/// status/metrics/drain` and the tests use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running service.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line, wait for the response line.
    pub fn call(&mut self, request: &crate::json::Json) -> std::io::Result<crate::json::Json> {
        let mut text = request.to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send a raw pre-serialized line (for tools forwarding stdin).
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<crate::json::Json> {
        let mut text = line.trim().to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}
