//! The TCP front end: accept loop, per-connection threads, and the clock
//! that maps wall time onto simulation time.
//!
//! Concurrency model: one listener thread accepts connections and spawns a
//! handler thread per client; one ticker thread advances the shared
//! [`OnlineDriver`] so scheduling periods and preemption epochs fire even
//! while no client is talking. All of them serialize on a single
//! `parking_lot::Mutex<OnlineDriver>` — the driver is cheap per call and
//! the contention domain is tiny, so a coarse lock beats a channel
//! architecture here.
//!
//! **Time**: the simulation clock runs at `time_scale` simulated seconds
//! per wall second. The paper's cadences (300 s scheduling period, 5 s
//! epoch) would make interactive use glacial in real time; a scale of,
//! say, 600 crosses a scheduling period every half wall-second while
//! keeping event order identical to an offline run at the same instants.

use crate::driver::OnlineDriver;
use crate::wire;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound address
    /// is reported on the returned handle).
    pub addr: String,
    /// Simulated seconds per wall-clock second.
    pub time_scale: f64,
    /// Wall interval between driver advances.
    pub tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            time_scale: 600.0,
            tick: Duration::from_millis(10),
        }
    }
}

/// A running service instance.
pub struct ServerHandle {
    /// The actually-bound address (resolves ephemeral ports).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    ticker_thread: Option<JoinHandle<()>>,
}

struct Shared {
    driver: Mutex<OnlineDriver>,
    shutdown: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Boot the service: bind, start the clock, start accepting.
pub fn serve(driver: OnlineDriver, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared { driver: Mutex::new(driver), shutdown: AtomicBool::new(false) });

    let ticker_thread = {
        let shared = Arc::clone(&shared);
        let scale = config.time_scale.max(0.0);
        let tick = config.tick.max(Duration::from_millis(1));
        std::thread::spawn(move || {
            let start = Instant::now();
            while !shared.stopping() {
                std::thread::sleep(tick);
                let target = dsp_units::Time::from_secs_f64(start.elapsed().as_secs_f64() * scale);
                let mut driver = shared.driver.lock();
                if driver.is_draining() {
                    break;
                }
                driver.advance_to(target);
            }
        })
    };

    let accept_thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !shared.stopping() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        handlers.push(std::thread::spawn(move || handle_client(stream, &shared)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        ticker_thread: Some(ticker_thread),
    })
}

fn handle_client(stream: TcpStream, shared: &Shared) {
    // Connection I/O errors just drop the client; the service lives on.
    // The read timeout keeps idle connections from pinning the shutdown
    // join: the loop wakes periodically to check the stop flag.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        // `read_line` appends what it managed to read before a timeout, so
        // `buf` accumulates across retries and is only cleared per line.
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let line = std::mem::take(&mut buf);
        if line.trim().is_empty() {
            continue;
        }
        let response = match wire::parse_request(&line) {
            Ok(request) => {
                let mut driver = shared.driver.lock();
                wire::handle(&mut driver, request)
            }
            Err(msg) => {
                wire::Response { body: wire::error_response("bad_request", &msg), shutdown: false }
            }
        };
        let mut text = response.body.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if response.shutdown {
            shared.stop();
            break;
        }
    }
}

impl ServerHandle {
    /// Has a drain (or explicit shutdown) been requested?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Request shutdown without draining (pending work is discarded).
    pub fn shutdown(&self) {
        self.shared.stop();
    }

    /// Block until the accept loop and clock exit (after a `drain`
    /// request or [`ServerHandle::shutdown`]).
    pub fn wait(mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.stop();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker_thread.take() {
            let _ = h.join();
        }
    }
}

/// Minimal blocking client for the line protocol — what `dsp submit/
/// status/metrics/drain` and the tests use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running service.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line, wait for the response line.
    pub fn call(&mut self, request: &crate::json::Json) -> std::io::Result<crate::json::Json> {
        let mut text = request.to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send a raw pre-serialized line (for tools forwarding stdin).
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<crate::json::Json> {
        let mut text = line.trim().to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}
