//! The TCP front end: accept loop, per-connection threads, and the clock
//! that maps wall time onto simulation time.
//!
//! Concurrency model (DESIGN.md §10.5): the request path is split into
//! two lanes.
//!
//! * **Write lane** — `submit` and `drain` (plus the ticker's clock
//!   advances) are commands on a *bounded* FIFO queue drained by a
//!   single driver-owner thread. The [`OnlineDriver`] is owned by that
//!   thread outright — there is no mutex to convoy on — so mutations
//!   are serialized exactly as before, but with FIFO fairness across
//!   connections and explicit backpressure (a full queue blocks the
//!   submitting client, not the whole service).
//! * **Read lane** — `ping`, `status`, `metrics`, `snapshot` are served
//!   from the [`SnapshotCell`]: an immutable [`StateSnapshot`] the owner
//!   thread re-publishes after every mutation (and at every boundary of
//!   a drain). Read handlers hold no driver reference at all — the type
//!   split in [`wire::handle_read`] makes touching the driver impossible
//!   — so a drain running the simulation dry or a fat submit cannot
//!   stall a monitoring client. Staleness is bounded by one mutation.
//!
//! `ServerConfig::read_cache` is the A/B off-switch: with it off, reads
//! are routed through the command queue too, restoring the old
//! serialize-everything behavior (`dsp bench --service` measures the
//! difference; `dspd --read-cache off` exposes it operationally).
//!
//! **Time**: the simulation clock runs at `time_scale` simulated seconds
//! per wall second. The paper's cadences (300 s scheduling period, 5 s
//! epoch) would make interactive use glacial in real time; a scale of,
//! say, 600 crosses a scheduling period every half wall-second while
//! keeping event order identical to an offline run at the same instants.

use crate::codec::Snapshot;
use crate::driver::OnlineDriver;
use crate::state::{SnapshotCell, StateSnapshot};
use crate::wire;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound address
    /// is reported on the returned handle).
    pub addr: String,
    /// Simulated seconds per wall-clock second.
    pub time_scale: f64,
    /// Wall interval between driver advances.
    pub tick: Duration,
    /// Serve reads from the published snapshot cache (the default). Off
    /// routes reads through the command queue — the serialize-everything
    /// baseline kept for A/B measurement (`--read-cache off`).
    pub read_cache: bool,
    /// Bound on queued write commands; a full queue blocks the sender.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            time_scale: 600.0,
            tick: Duration::from_millis(10),
            read_cache: true,
            queue_depth: 128,
        }
    }
}

/// One unit of work for the driver-owner thread.
enum Command {
    /// A client mutation; the response goes back on the reply channel.
    Write(wire::WriteRequest, SyncSender<wire::Response>),
    /// A client read in `read_cache: false` mode: answered from the
    /// published snapshot, but only after every earlier command — the
    /// old mutex-convoy behavior, preserved for A/B benchmarks.
    ReadThrough(wire::ReadRequest, SyncSender<wire::Response>),
    /// The ticker mapping wall time onto simulation time.
    Tick(dsp_units::Time),
}

/// A running service instance.
pub struct ServerHandle {
    /// The actually-bound address (resolves ephemeral ports).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    ticker_thread: Option<JoinHandle<()>>,
    owner_thread: Option<JoinHandle<()>>,
}

/// What every connection handler can see: the command queue, the read
/// cache, and the stop flag. Deliberately **not** the driver — only the
/// owner thread holds that.
struct Shared {
    commands: SyncSender<Command>,
    reads: Arc<SnapshotCell>,
    read_cache: bool,
    shutdown: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        // ordering: SeqCst — a plain shutdown latch, never paired with other
        // data; flipped once, read in accept/handler loops. Not hot enough
        // to justify reasoning about a weaker ordering.
        self.shutdown.load(Ordering::SeqCst)
    }

    fn stop(&self) {
        // ordering: SeqCst — see `stopping`; the store publishes nothing
        // beyond the flag itself.
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Send one command and wait for its reply. Errors (owner gone mid-
    /// shutdown) surface as a `draining` refusal rather than a hang.
    fn roundtrip(
        &self,
        make: impl FnOnce(SyncSender<wire::Response>) -> Command,
    ) -> wire::Response {
        let (reply_tx, reply_rx) = sync_channel(1);
        if self.commands.send(make(reply_tx)).is_ok() {
            if let Ok(response) = reply_rx.recv() {
                return response;
            }
        }
        wire::Response {
            body: wire::error_response("draining", "service is shutting down"),
            shutdown: false,
        }
    }
}

/// Publishes [`StateSnapshot`]s into the cell after driver mutations,
/// reusing the heavyweight artifact `Arc` across quiet ticks (same
/// [`OnlineDriver::change_stamp`] — nothing to re-serialize).
struct Publisher {
    cell: Arc<SnapshotCell>,
    version: u64,
    stamp: (u64, u64, u64),
    artifact: Arc<Snapshot>,
}

impl Publisher {
    fn publish(&mut self, driver: &OnlineDriver) {
        let stamp = driver.change_stamp();
        if stamp != self.stamp {
            self.artifact = Arc::new(driver.snapshot());
            self.stamp = stamp;
        }
        self.version += 1;
        self.cell.publish(driver.state_snapshot(self.version, Arc::clone(&self.artifact)));
    }
}

/// Boot the service: bind, start the driver-owner thread and the clock,
/// start accepting.
pub fn serve(driver: OnlineDriver, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // Seed the read lane before the first connection can land.
    let artifact = Arc::new(driver.snapshot());
    let stamp = driver.change_stamp();
    let cell = Arc::new(SnapshotCell::new(driver.state_snapshot(0, Arc::clone(&artifact))));
    let (commands, command_rx) = sync_channel(config.queue_depth.max(1));

    let shared = Arc::new(Shared {
        commands,
        reads: Arc::clone(&cell),
        read_cache: config.read_cache,
        shutdown: AtomicBool::new(false),
    });

    let owner_thread = {
        let shared = Arc::clone(&shared);
        let publisher = Publisher { cell, version: 0, stamp, artifact };
        std::thread::spawn(move || drive(driver, command_rx, publisher, &shared))
    };

    let ticker_thread = {
        let shared = Arc::clone(&shared);
        let scale = config.time_scale.max(0.0);
        let tick = config.tick.max(Duration::from_millis(1));
        std::thread::spawn(move || {
            let start = Instant::now();
            while !shared.stopping() {
                std::thread::sleep(tick);
                let target = dsp_units::Time::from_secs_f64(start.elapsed().as_secs_f64() * scale);
                // A full queue means the owner is busy with client work;
                // skipping a tick is fine — the next one re-targets.
                match shared.commands.try_send(Command::Tick(target)) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        })
    };

    let accept_thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !shared.stopping() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        handlers.push(std::thread::spawn(move || handle_client(stream, &shared)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        ticker_thread: Some(ticker_thread),
        owner_thread: Some(owner_thread),
    })
}

/// The driver-owner loop: the only code that ever touches the
/// [`OnlineDriver`] after boot. Commands are processed strictly FIFO;
/// after each mutation the publisher swaps a fresh snapshot into the
/// read cell. Exits once shutdown is flagged and the queue stays empty
/// for one poll interval (late commands still get answered).
fn drive(
    mut driver: OnlineDriver,
    commands: Receiver<Command>,
    mut publisher: Publisher,
    shared: &Shared,
) {
    loop {
        let command = match commands.recv_timeout(Duration::from_millis(50)) {
            Ok(c) => c,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match command {
            Command::Tick(target) => {
                if driver.is_draining() {
                    continue;
                }
                driver.advance_to(target);
                publisher.publish(&driver);
            }
            Command::Write(request, reply) => {
                let response =
                    wire::handle_write(&mut driver, request, &mut |d| publisher.publish(d));
                publisher.publish(&driver);
                let shutdown = response.shutdown;
                // A dropped reply channel (client hung up mid-call) must
                // not kill the service.
                let _ = reply.send(response);
                if shutdown {
                    shared.stop();
                }
            }
            Command::ReadThrough(request, reply) => {
                let _ = reply.send(wire::handle_read(&publisher.cell.load(), request));
            }
        }
    }
}

fn handle_client(stream: TcpStream, shared: &Shared) {
    // Connection I/O errors just drop the client; the service lives on.
    // The read timeout keeps idle connections from pinning the shutdown
    // join: the loop wakes periodically to check the stop flag.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        // `read_line` appends what it managed to read before a timeout, so
        // `buf` accumulates across retries and is only cleared per line.
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let line = std::mem::take(&mut buf);
        if line.trim().is_empty() {
            continue;
        }
        let response = match wire::parse_request(&line) {
            // The read lane: answered from the published snapshot alone.
            // This arm has no path to the driver — `handle_read` only
            // accepts the immutable view.
            Ok(wire::Request::Read(request)) if shared.read_cache => {
                wire::handle_read(&shared.reads.load(), request)
            }
            // A/B baseline: reads serialized behind the write queue.
            Ok(wire::Request::Read(request)) => {
                shared.roundtrip(|reply| Command::ReadThrough(request, reply))
            }
            Ok(wire::Request::Write(request)) => {
                shared.roundtrip(|reply| Command::Write(request, reply))
            }
            Err(msg) => {
                wire::Response { body: wire::error_response("bad_request", &msg), shutdown: false }
            }
        };
        let mut text = response.body.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if response.shutdown {
            break;
        }
    }
}

impl ServerHandle {
    /// The read lane's publish point — what `status`/`metrics`/`snapshot`
    /// are answered from. Exposed for tests and in-process tooling.
    pub fn reads(&self) -> Arc<StateSnapshot> {
        self.shared.reads.load()
    }

    /// Has a drain (or explicit shutdown) been requested?
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Request shutdown without draining (pending work is discarded).
    pub fn shutdown(&self) {
        self.shared.stop();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.owner_thread.take() {
            let _ = h.join();
        }
    }

    /// Block until the accept loop, clock, and driver-owner exit (after
    /// a `drain` request or [`ServerHandle::shutdown`]).
    pub fn wait(mut self) {
        self.join_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.stop();
        self.join_all();
    }
}

/// Minimal blocking client for the line protocol — what `dsp submit/
/// status/metrics/drain` and the tests use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running service.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line, wait for the response line.
    pub fn call(&mut self, request: &crate::json::Json) -> std::io::Result<crate::json::Json> {
        let mut text = request.to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send a raw pre-serialized line (for tools forwarding stdin).
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<crate::json::Json> {
        let mut text = line.trim().to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        crate::json::parse(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}
