//! `dspd` — the DSP online service daemon.
//!
//! ```text
//! dspd [--addr HOST:PORT] [--cluster ec2|palmetto|uniform:N:RATE:SLOTS]
//!      [--sched dsp|fifo|tetris|tetris-wodep|aalo] [--preempt dsp|dsp-wopp|none]
//!      [--period SECS] [--epoch SECS] [--time-scale F]
//!      [--max-pending TASKS] [--no-feasibility] [--read-cache on|off]
//!      [--frontend threads|reactor] [--max-conns N] [--reactor-threads N]
//!      [--shards N] [--route hash|least-loaded|deadline]
//! ```
//!
//! Binds the socket (port 0 picks an ephemeral port), prints
//! `dspd listening on HOST:PORT` on stdout, and serves the newline-
//! delimited JSON protocol until a client sends `{"op":"drain"}`.
//! `--time-scale` is simulated seconds per wall second; the default 600
//! crosses one 300 s scheduling period every half wall-second.
//! `--read-cache off` routes reads through the write-command queue
//! (the serialize-everything baseline) instead of the published
//! snapshot — kept for A/B measurement, not production use.
//! `--frontend` selects the connection-serving machinery: `threads`
//! (one blocking thread per connection, portable) or `reactor` (a fixed
//! pool of epoll event-loop threads; linux only, and the default
//! there). `--max-conns` caps accepted connections — excess clients get
//! one `busy` reply and a close. `--reactor-threads` sizes the reactor
//! pool (0 = auto).
//! `--shards N` partitions the cluster into N independent shards — each
//! with its own engine, driver-owner thread, command queue, and snapshot
//! cell — behind a placement router, so submit throughput scales with
//! cores (DESIGN.md §10.7). `--route` picks the placement policy:
//! `hash` (deterministic round-robin over batches; with the strided id
//! lanes this is hash-by-JobId), `least-loaded`, or `deadline`
//! (feasibility-scored against each shard's sub-cluster).

use dsp_core::config::Params;
use dsp_service::{
    build_cluster, build_policy, build_scheduler, serve_federated, AdmissionConfig, FederationSpec,
    RoutePolicy, MAX_SHARDS,
};
use dsp_units::Dur;
use std::io::Write;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dspd [--addr HOST:PORT] [--cluster ec2|palmetto|uniform:N:RATE:SLOTS] \
         [--sched dsp|fifo|tetris|tetris-wodep|aalo] [--preempt dsp|dsp-wopp|none] \
         [--period SECS] [--epoch SECS] [--time-scale F] [--max-pending TASKS] \
         [--no-feasibility] [--read-cache on|off] [--frontend threads|reactor] \
         [--max-conns N] [--reactor-threads N] [--shards N] \
         [--route hash|least-loaded|deadline]"
    );
    std::process::exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut cluster_name = "ec2".to_string();
    let mut sched_name = "dsp".to_string();
    let mut preempt_name = "dsp".to_string();
    let mut params = Params::default();
    let mut time_scale = 600.0_f64;
    let mut admission = AdmissionConfig::default();
    let mut read_cache = true;
    let mut frontend = dsp_service::Frontend::platform_default();
    let mut max_conns = 0usize;
    let mut reactor_threads = 0usize;
    let mut shards = 1usize;
    let mut route = RoutePolicy::Hash;

    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = next(&mut i),
            "--cluster" => cluster_name = next(&mut i),
            "--sched" => sched_name = next(&mut i),
            "--preempt" => preempt_name = next(&mut i),
            "--period" => {
                let secs: u64 = next(&mut i).parse().unwrap_or_else(|_| usage());
                if secs == 0 {
                    usage();
                }
                params.sched_period = Dur::from_secs(secs);
            }
            "--epoch" => {
                let secs: u64 = next(&mut i).parse().unwrap_or_else(|_| usage());
                if secs == 0 {
                    usage();
                }
                params.epoch = Dur::from_secs(secs);
            }
            "--time-scale" => {
                time_scale = next(&mut i).parse().unwrap_or_else(|_| usage());
                if time_scale.is_nan() || time_scale <= 0.0 {
                    usage();
                }
            }
            "--max-pending" => {
                admission.max_pending_tasks = next(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--no-feasibility" => admission.check_feasibility = false,
            "--read-cache" => {
                read_cache = match next(&mut i).as_str() {
                    "on" => true,
                    "off" => false,
                    _ => usage(),
                }
            }
            "--frontend" => {
                frontend = dsp_service::Frontend::parse(&next(&mut i)).unwrap_or_else(|| usage());
            }
            "--max-conns" => {
                max_conns = next(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--reactor-threads" => {
                reactor_threads = next(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--shards" => {
                shards = next(&mut i).parse().unwrap_or_else(|_| usage());
                if shards == 0 || shards > MAX_SHARDS {
                    usage();
                }
            }
            "--route" => {
                route = RoutePolicy::parse(&next(&mut i)).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let cluster = build_cluster(&cluster_name).unwrap_or_else(|| usage());
    // Validate the names up front (exit 2 on a typo); the factories the
    // federation calls per shard then cannot fail.
    build_scheduler(&sched_name).unwrap_or_else(|| usage());
    build_policy(&preempt_name, &params).unwrap_or_else(|| usage());

    let spec = FederationSpec {
        cluster,
        engine: params.engine_config(),
        sched_period: params.sched_period,
        admission,
        scheduler: {
            let name = sched_name.clone();
            Box::new(move || {
                build_scheduler(&name).unwrap_or_else(|| unreachable!("validated above"))
            })
        },
        policy: {
            let (name, params) = (preempt_name.clone(), params);
            Box::new(move || {
                build_policy(&name, &params).unwrap_or_else(|| unreachable!("validated above"))
            })
        },
    };

    let config = dsp_service::ServerConfig {
        addr,
        time_scale,
        tick: Duration::from_millis(10),
        read_cache,
        frontend,
        max_conns,
        reactor_threads,
        shards,
        route,
        ..Default::default()
    };
    let handle = match serve_federated(spec, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dspd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The smoke script and client tooling scrape this line for the port.
    println!("dspd listening on {}", handle.addr);
    println!("dspd frontend: {}", frontend.name());
    println!("dspd shards: {} (route: {})", handle.shards(), route.name());
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("dspd drained; exiting");
}
