//! A minimal, dependency-free JSON tree: parser, writer, and accessors.
//!
//! The wire protocol and snapshot artifacts must encode and decode JSON *at
//! runtime*. The workspace's `serde`/`serde_json` dependency is kept for
//! type-level compatibility with external tooling, but this crate cannot
//! assume a functional implementation is linked in every build environment,
//! so the service carries its own small JSON kernel. It supports exactly
//! the JSON this workspace emits: objects, arrays, strings with standard
//! escapes, booleans, null, and numbers. Integers are kept exact — `Time`
//! and `Dur` are `u64` microseconds (with `u64::MAX` as an "unset"
//! sentinel), which `f64` cannot represent.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (the common case for ids and
    /// microsecond timestamps).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keyed by `BTreeMap` so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting exact non-negative integers only.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(u) => Some(u),
            Json::I64(i) if i >= 0 => Some(i as u64),
            Json::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(53) => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(u) => Some(u as f64),
            Json::I64(i) => Some(i as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(u) => out.push_str(&u.to_string()),
            Json::I64(i) => out.push_str(&i.to_string()),
            Json::F64(f) => {
                // JSON has no NaN/Infinity; null is the least-wrong encoding
                // and the decoder side treats a null number as invalid.
                if f.is_finite() {
                    // Guarantee a numeric token that re-parses as F64-or-int.
                    let s = format!("{f}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialization is via `Display`: compact JSON text, no whitespace,
/// stable (sorted) key order — `value.to_string()` gives one wire line.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Recursion guard: protocol messages are shallow; anything deeper than
/// this is hostile or corrupt input, not data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The slice is valid UTF-8 because the input is &str.
                out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode \uD8xx\uDCxx sequences.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 consumed through the last digit
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Consume `uXXXX` starting at the `u`; leaves `pos` on the last digit's
    /// following byte minus one (callers `continue` or advance).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        // self.pos is at 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Json::F64)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_max_is_exact() {
        // Time::MAX microseconds — the "unset deadline" sentinel — must
        // survive a JSON round trip bit-exactly, which f64 cannot do.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
        assert_eq!(v.to_string(), "18446744073709551615");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3.25,"e":{}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        let round = parse(&v.to_string()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""quote\" back\\ slash\/ tab\t ué pair😀""#).unwrap();
        assert_eq!(v.as_str(), Some("quote\" back\\ slash/ tab\t u\u{e9} pair\u{1F600}"));
        // Control characters in output are escaped so the line protocol
        // never emits a raw newline inside a message.
        let s = Json::Str("a\nb\u{1}".into()).to_string();
        assert!(!s.contains('\n'), "{s}");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\nb\u{1}"));
    }

    #[test]
    fn errors_carry_position() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = parse("[1, oops]").unwrap_err();
        assert!(e.at >= 4, "{e}");
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn number_accessors() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7").unwrap().as_f64(), Some(7.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("3.0").unwrap().as_u64(), Some(3));
    }
}
