//! The wire protocol: newline-delimited JSON request/response framing.
//!
//! One request per line, one response line per request, in order.
//! Requests are objects with an `"op"` discriminator:
//!
//! | op         | fields                      | success payload              |
//! |------------|-----------------------------|------------------------------|
//! | `ping`     | —                           | `pong: true`                 |
//! | `submit`   | `jobs: [JobRequest…]`       | `ids: [u32…]`                |
//! | `status`   | `job: u32`                  | `state`, `progress?`         |
//! | `metrics`  | —                           | `now_us`, counters, `metrics`|
//! | `snapshot` | —                           | `snapshot` (versioned)       |
//! | `drain`    | —                           | `snapshot`; server shuts down|
//!
//! Every response carries `"ok": bool`; failures add a stable `"reason"`
//! token and a human-readable `"error"` string. The token table lives in
//! **one** place — DESIGN.md §10.7 ("Wire reason tokens") — tests assert
//! against these constants, not against fresh string literals.
//! Read responses additionally carry `"state_version"`, the publish
//! sequence number of the snapshot they were answered from —
//! non-decreasing per connection (under `--shards N>1` it is the max of
//! the per-shard versions, and a `shard_versions` array carries the
//! whole vector; see DESIGN.md §10.7).
//!
//! A `JobRequest` is `{class?, deadline_us?, tasks: […], edges: [[u,v]…]}`
//! where each task is `{size, est_size?, recovery_us?, demand?}` — only
//! `size` (MI) is required; demand defaults to unit CPU/mem.
//!
//! The verb set is split at the type level into a **read lane** and a
//! **write lane** (DESIGN.md §10.5): [`handle_read`] takes only the
//! published [`StateSnapshot`] — it *cannot* reach the driver — while
//! [`handle_write`] takes the driver itself and runs on the single
//! driver-owner thread.

use crate::codec;
use crate::driver::{JobRequest, JobStatus, OnlineDriver};
use crate::json::{parse, Json};
use crate::state::StateSnapshot;
use dsp_dag::{JobClass, JobId, TaskSpec};
use dsp_units::{Dur, Mi, ResourceVec};

/// A request answered from the published state snapshot, off the driver
/// lock-path entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadRequest {
    /// Liveness probe.
    Ping,
    /// Query one job's progress.
    Status(JobId),
    /// Headline service counters.
    Metrics,
    /// Current auditable state (mid-run; history may be partial).
    Snapshot,
}

/// A request that mutates the driver; serialized FIFO through the
/// bounded command queue.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteRequest {
    /// Admit a batch of jobs.
    Submit(Vec<JobRequest>),
    /// Flush, run dry, return the final snapshot, and stop the service.
    Drain,
}

/// A decoded client request, already routed to its lane.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Served from the snapshot cache.
    Read(ReadRequest),
    /// Goes through the command queue to the driver-owner thread.
    Write(WriteRequest),
}

fn bad(msg: impl Into<String>) -> String {
    msg.into()
}

fn task_from_request(v: &Json) -> Result<TaskSpec, String> {
    let size = v
        .get("size")
        .and_then(Json::as_f64)
        .filter(|s| *s > 0.0)
        .ok_or_else(|| bad("task 'size' (MI, positive number) is required"))?;
    let mut spec = TaskSpec::new(
        Mi::new(size),
        match v.get("demand") {
            Some(d) => ResourceVec::new(
                d.get("cpu").and_then(Json::as_f64).unwrap_or(1.0),
                d.get("mem").and_then(Json::as_f64).unwrap_or(1.0),
                d.get("disk").and_then(Json::as_f64).unwrap_or(0.0),
                d.get("bw").and_then(Json::as_f64).unwrap_or(0.0),
            ),
            None => ResourceVec::cpu_mem(1.0, 1.0),
        },
    );
    if let Some(est) = v.get("est_size").and_then(Json::as_f64) {
        spec = spec.with_estimate(Mi::new(est));
    }
    if let Some(rec) = v.get("recovery_us").and_then(Json::as_u64) {
        spec.recovery = Dur::from_micros(rec);
    }
    Ok(spec)
}

fn job_request_from_json(v: &Json) -> Result<JobRequest, String> {
    let class = match v.get("class") {
        None => JobClass::Small,
        Some(c) => match c.as_str() {
            Some("Small") => JobClass::Small,
            Some("Medium") => JobClass::Medium,
            Some("Large") => JobClass::Large,
            _ => return Err(bad("'class' must be one of Small|Medium|Large")),
        },
    };
    let deadline = match v.get("deadline_us") {
        None | Some(Json::Null) => None,
        Some(d) => {
            Some(Dur::from_micros(d.as_u64().ok_or_else(|| bad("'deadline_us' must be a u64"))?))
        }
    };
    let tasks = v
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("'tasks' array is required"))?
        .iter()
        .map(task_from_request)
        .collect::<Result<Vec<_>, _>>()?;
    let mut edges = Vec::new();
    if let Some(raw) = v.get("edges") {
        let raw = raw.as_arr().ok_or_else(|| bad("'edges' must be an array"))?;
        for e in raw {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let pair = pair.ok_or_else(|| bad("each edge must be a [from,to] pair"))?;
            let u = pair[0].as_u64().ok_or_else(|| bad("edge endpoints must be u64"))?;
            let v2 = pair[1].as_u64().ok_or_else(|| bad("edge endpoints must be u64"))?;
            if u > u64::from(u32::MAX) || v2 > u64::from(u32::MAX) {
                return Err(bad("edge endpoint exceeds u32"));
            }
            edges.push((u as u32, v2 as u32));
        }
    }
    Ok(JobRequest { class, deadline, tasks, edges })
}

/// Encode a [`JobRequest`] in the submit-request shape (the inverse of
/// the decoder above) — used by client tooling to build `submit` lines.
pub fn job_request_to_json(r: &JobRequest) -> Json {
    Json::obj(vec![
        (
            "class",
            Json::Str(
                match r.class {
                    JobClass::Small => "Small",
                    JobClass::Medium => "Medium",
                    JobClass::Large => "Large",
                }
                .into(),
            ),
        ),
        (
            "deadline_us",
            match r.deadline {
                Some(d) => Json::U64(d.as_micros()),
                None => Json::Null,
            },
        ),
        (
            "tasks",
            Json::Arr(
                r.tasks
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("size", Json::F64(t.size.get())),
                            ("est_size", Json::F64(t.est_size.get())),
                            ("recovery_us", Json::U64(t.recovery.as_micros())),
                            (
                                "demand",
                                Json::obj(vec![
                                    ("cpu", Json::F64(t.demand.cpu)),
                                    ("mem", Json::F64(t.demand.mem)),
                                    ("disk", Json::F64(t.demand.disk)),
                                    ("bw", Json::F64(t.demand.bw)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                r.edges
                    .iter()
                    .map(|(u, v)| {
                        Json::Arr(vec![Json::U64(u64::from(*u)), Json::U64(u64::from(*v))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Build a complete `submit` request line from job requests.
pub fn submit_request(jobs: &[JobRequest]) -> Json {
    Json::obj(vec![
        ("op", Json::Str("submit".into())),
        ("jobs", Json::Arr(jobs.iter().map(job_request_to_json).collect())),
    ])
}

/// Decode one request line. `Err` carries a human-readable message the
/// server wraps in a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
    let op = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing 'op' field"))?;
    match op {
        "ping" => Ok(Request::Read(ReadRequest::Ping)),
        "submit" => {
            let jobs = v
                .get("jobs")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("'jobs' array is required"))?
                .iter()
                .map(job_request_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Write(WriteRequest::Submit(jobs)))
        }
        "status" => {
            let id = v
                .get("job")
                .and_then(Json::as_u64)
                .filter(|id| *id <= u64::from(u32::MAX))
                .ok_or_else(|| bad("'job' (u32 id) is required"))?;
            Ok(Request::Read(ReadRequest::Status(JobId(id as u32))))
        }
        "metrics" => Ok(Request::Read(ReadRequest::Metrics)),
        "snapshot" => Ok(Request::Read(ReadRequest::Snapshot)),
        "drain" => Ok(Request::Write(WriteRequest::Drain)),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// The stable `"reason"` tokens clients may match on. The authoritative
/// table (meaning, issuer, retry semantics) is DESIGN.md §10.7 — these
/// constants exist so producers and tests share one spelling.
pub mod reason {
    /// Malformed request line (front end, before any lane).
    pub const BAD_REQUEST: &str = "bad_request";
    /// Pending-queue cap hit; retry later ([`crate::AdmitError`]).
    pub const BACKPRESSURE: &str = "backpressure";
    /// Deadline-feasibility pre-check refused the batch.
    pub const INFEASIBLE: &str = "infeasible";
    /// Structurally invalid job (empty, bad edge, …).
    pub const INVALID: &str = "invalid";
    /// Service (or every shard) is draining; no new work accepted.
    pub const DRAINING: &str = "draining";
    /// `status` for an id that was never admitted.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// Connection cap shed this socket before reading a request.
    pub const BUSY: &str = "busy";
    /// Reroute walked every shard and none could admit the batch —
    /// each was quiesced or its queue saturated — while the federation
    /// as a whole is *not* draining. Retryable, unlike `draining`.
    pub const QUIESCED: &str = "quiesced";
}

/// Re-export for terse call sites ([`crate::router`]'s shed path).
pub use reason::QUIESCED as REASON_QUIESCED;

/// Build a failure response line.
pub fn error_response(reason: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("reason", Json::Str(reason.to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

/// The outcome of executing one request.
pub struct Response {
    /// The response document (one line once serialized).
    pub body: Json,
    /// True when the request was `drain`: the server should stop
    /// accepting connections after writing this response.
    pub shutdown: bool,
}

/// Execute a read request against the **published snapshot only**. The
/// signature is the enforcement: there is no driver to reach, so a read
/// can never block behind (or convoy with) a mutation. Every response
/// carries `state_version`, the snapshot's publish sequence number.
pub fn handle_read(state: &StateSnapshot, request: ReadRequest) -> Response {
    let version = ("state_version", Json::U64(state.version));
    match request {
        ReadRequest::Ping => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("now_us", Json::U64(state.now.as_micros())),
                version,
            ]),
            shutdown: false,
        },
        ReadRequest::Status(id) => match state.status(id) {
            Some(JobStatus::Pending) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::U64(u64::from(id.0))),
                    ("state", Json::Str("pending".into())),
                    version,
                ]),
                shutdown: false,
            },
            Some(JobStatus::Active(progress)) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::U64(u64::from(id.0))),
                    ("state", Json::Str("active".into())),
                    ("progress", codec::progress_to_json(progress)),
                    version,
                ]),
                shutdown: false,
            },
            None => Response {
                body: error_response("unknown_job", &format!("job {} was never admitted", id.0)),
                shutdown: false,
            },
        },
        ReadRequest::Metrics => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("now_us", Json::U64(state.now.as_micros())),
                ("periods_elapsed", Json::U64(state.periods_elapsed)),
                ("batches_scheduled", Json::U64(state.batches_scheduled)),
                ("pending_tasks", Json::U64(state.pending_tasks as u64)),
                ("draining", Json::Bool(state.draining)),
                ("metrics", codec::metrics_to_json(&state.metrics)),
                version,
            ]),
            shutdown: false,
        },
        ReadRequest::Snapshot => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("snapshot", state.artifact.to_json()),
                version,
            ]),
            shutdown: false,
        },
    }
}

/// Execute a write request on the driver-owner thread. `publish` is the
/// server's snapshot-publish hook; `drain` calls it at every boundary of
/// its advance-until-dry loop so readers observe monotone progress
/// instead of one frozen pre-drain view. Simulation time is otherwise
/// advanced by the server's clock tick, not here.
pub fn handle_write(
    driver: &mut OnlineDriver,
    request: WriteRequest,
    publish: &mut dyn FnMut(&OnlineDriver),
) -> Response {
    match request {
        WriteRequest::Submit(requests) => match driver.submit(requests) {
            Ok(ids) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("ids", Json::Arr(ids.iter().map(|id| Json::U64(u64::from(id.0))).collect())),
                    ("next_boundary_us", Json::U64(driver.next_boundary().as_micros())),
                ]),
                shutdown: false,
            },
            Err(e) => {
                Response { body: error_response(e.reason(), &e.to_string()), shutdown: false }
            }
        },
        WriteRequest::Drain => {
            let snapshot = driver.drain_with(publish);
            Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                    ("snapshot", snapshot.to_json()),
                ]),
                shutdown: true,
            }
        }
    }
}

/// Single-threaded convenience: route either lane against a live driver
/// (reads see a freshly built, version-0 view). This is the path for
/// tests and in-process tooling that hold the driver directly; the
/// server never uses it.
pub fn handle(driver: &mut OnlineDriver, request: Request) -> Response {
    match request {
        Request::Read(read) => {
            let artifact = std::sync::Arc::new(driver.snapshot());
            handle_read(&driver.state_snapshot(0, artifact), read)
        }
        Request::Write(write) => handle_write(driver, write, &mut |_| {}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use dsp_cluster::uniform;
    use dsp_preempt::DspPolicy;
    use dsp_sched::DspListScheduler;
    use dsp_sim::EngineConfig;
    use dsp_units::Time;

    fn driver() -> OnlineDriver {
        let params = dsp_core::config::Params::default();
        OnlineDriver::new(
            uniform(4, 1000.0, 2),
            EngineConfig {
                epoch: Dur::from_secs(5),
                sigma: Dur::from_millis(50),
                max_time: Time::from_secs(24 * 3600),
                lookahead: 4,
            },
            Dur::from_secs(300),
            Box::new(DspListScheduler::default()),
            Box::new(DspPolicy::new(params.dsp_params(true))),
            AdmissionConfig::default(),
        )
    }

    #[test]
    fn parses_the_full_verb_set() {
        // Reads and writes land in their lanes at parse time.
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Read(ReadRequest::Ping));
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Read(ReadRequest::Metrics)
        );
        assert_eq!(
            parse_request(r#"{"op":"snapshot"}"#).unwrap(),
            Request::Read(ReadRequest::Snapshot)
        );
        assert_eq!(
            parse_request(r#"{"op":"drain"}"#).unwrap(),
            Request::Write(WriteRequest::Drain)
        );
        assert_eq!(
            parse_request(r#"{"op":"status","job":3}"#).unwrap(),
            Request::Read(ReadRequest::Status(JobId(3)))
        );
        let req = parse_request(
            r#"{"op":"submit","jobs":[{"class":"Medium","deadline_us":5000000,
                "tasks":[{"size":100},{"size":200,"est_size":180}],"edges":[[0,1]]}]}"#,
        )
        .unwrap();
        match req {
            Request::Write(WriteRequest::Submit(jobs)) => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(jobs[0].class, JobClass::Medium);
                assert_eq!(jobs[0].deadline, Some(Dur::from_secs(5)));
                assert_eq!(jobs[0].tasks.len(), 2);
                assert_eq!(jobs[0].tasks[1].est_size, Mi::new(180.0));
                assert_eq!(jobs[0].edges, vec![(0, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"submit","jobs":[{"tasks":[{"size":-5}]}]}"#,
            r#"{"op":"submit","jobs":[{"tasks":[{}]}]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn submit_status_drain_over_the_handler() {
        let mut d = driver();
        let r = handle(
            &mut d,
            parse_request(
                r#"{"op":"submit","jobs":[{"tasks":[{"size":500},{"size":500}],"edges":[[0,1]]}]}"#,
            )
            .unwrap(),
        );
        assert_eq!(r.body.get("ok"), Some(&Json::Bool(true)));
        assert!(!r.shutdown);

        let r = handle(&mut d, Request::Read(ReadRequest::Status(JobId(0))));
        assert_eq!(r.body.get("state").and_then(Json::as_str), Some("pending"));
        assert!(r.body.get("state_version").is_some(), "reads carry the snapshot version");
        let r = handle(&mut d, Request::Read(ReadRequest::Status(JobId(99))));
        assert_eq!(r.body.get("reason").and_then(Json::as_str), Some("unknown_job"));

        let r = handle(&mut d, Request::Write(WriteRequest::Drain));
        assert!(r.shutdown);
        let snap = r.body.get("snapshot").expect("snapshot attached");
        let decoded = crate::codec::Snapshot::from_json(snap).unwrap();
        assert_eq!(decoded.jobs.len(), 1);
        assert!(decoded.verify().passes(), "{:?}", decoded.verify());

        // Post-drain submissions surface the stable reason token.
        let r = handle(
            &mut d,
            parse_request(r#"{"op":"submit","jobs":[{"tasks":[{"size":1}]}]}"#).unwrap(),
        );
        assert_eq!(r.body.get("reason").and_then(Json::as_str), Some("draining"));
    }

    #[test]
    fn job_request_encoding_roundtrips() {
        let requests = vec![JobRequest {
            class: JobClass::Large,
            deadline: Some(Dur::from_secs(120)),
            tasks: vec![
                TaskSpec::sized(300.0).with_estimate(Mi::new(250.0)),
                TaskSpec::sized(400.0),
            ],
            edges: vec![(0, 1)],
        }];
        let line = submit_request(&requests).to_string();
        match parse_request(&line).unwrap() {
            Request::Write(WriteRequest::Submit(back)) => assert_eq!(back, requests),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_are_single_lines() {
        let mut d = driver();
        let r = handle(&mut d, Request::Read(ReadRequest::Metrics));
        let line = r.body.to_string();
        assert!(!line.contains('\n'));
        assert!(parse(&line).is_ok());
    }
}
