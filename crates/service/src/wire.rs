//! The wire protocol: newline-delimited JSON request/response framing.
//!
//! One request per line, one response line per request, in order.
//! Requests are objects with an `"op"` discriminator:
//!
//! | op         | fields                      | success payload              |
//! |------------|-----------------------------|------------------------------|
//! | `ping`     | —                           | `pong: true`                 |
//! | `submit`   | `jobs: [JobRequest…]`       | `ids: [u32…]`                |
//! | `status`   | `job: u32`                  | `state`, `progress?`         |
//! | `metrics`  | —                           | `now_us`, counters, `metrics`|
//! | `snapshot` | —                           | `snapshot` (versioned)       |
//! | `drain`    | —                           | `snapshot`; server shuts down|
//!
//! Every response carries `"ok": bool`; failures add a stable `"reason"`
//! token (`bad_request`, `backpressure`, `infeasible`, `invalid`,
//! `draining`, `unknown_job`) and a human-readable `"error"` string.
//!
//! A `JobRequest` is `{class?, deadline_us?, tasks: […], edges: [[u,v]…]}`
//! where each task is `{size, est_size?, recovery_us?, demand?}` — only
//! `size` (MI) is required; demand defaults to unit CPU/mem.

use crate::codec;
use crate::driver::{JobRequest, JobStatus, OnlineDriver};
use crate::json::{parse, Json};
use dsp_dag::{JobClass, JobId, TaskSpec};
use dsp_units::{Dur, Mi, ResourceVec};

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit a batch of jobs.
    Submit(Vec<JobRequest>),
    /// Query one job's progress.
    Status(JobId),
    /// Headline service counters.
    Metrics,
    /// Current auditable state (mid-run; history may be partial).
    Snapshot,
    /// Flush, run dry, return the final snapshot, and stop the service.
    Drain,
}

fn bad(msg: impl Into<String>) -> String {
    msg.into()
}

fn task_from_request(v: &Json) -> Result<TaskSpec, String> {
    let size = v
        .get("size")
        .and_then(Json::as_f64)
        .filter(|s| *s > 0.0)
        .ok_or_else(|| bad("task 'size' (MI, positive number) is required"))?;
    let mut spec = TaskSpec::new(
        Mi::new(size),
        match v.get("demand") {
            Some(d) => ResourceVec::new(
                d.get("cpu").and_then(Json::as_f64).unwrap_or(1.0),
                d.get("mem").and_then(Json::as_f64).unwrap_or(1.0),
                d.get("disk").and_then(Json::as_f64).unwrap_or(0.0),
                d.get("bw").and_then(Json::as_f64).unwrap_or(0.0),
            ),
            None => ResourceVec::cpu_mem(1.0, 1.0),
        },
    );
    if let Some(est) = v.get("est_size").and_then(Json::as_f64) {
        spec = spec.with_estimate(Mi::new(est));
    }
    if let Some(rec) = v.get("recovery_us").and_then(Json::as_u64) {
        spec.recovery = Dur::from_micros(rec);
    }
    Ok(spec)
}

fn job_request_from_json(v: &Json) -> Result<JobRequest, String> {
    let class = match v.get("class") {
        None => JobClass::Small,
        Some(c) => match c.as_str() {
            Some("Small") => JobClass::Small,
            Some("Medium") => JobClass::Medium,
            Some("Large") => JobClass::Large,
            _ => return Err(bad("'class' must be one of Small|Medium|Large")),
        },
    };
    let deadline = match v.get("deadline_us") {
        None | Some(Json::Null) => None,
        Some(d) => {
            Some(Dur::from_micros(d.as_u64().ok_or_else(|| bad("'deadline_us' must be a u64"))?))
        }
    };
    let tasks = v
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("'tasks' array is required"))?
        .iter()
        .map(task_from_request)
        .collect::<Result<Vec<_>, _>>()?;
    let mut edges = Vec::new();
    if let Some(raw) = v.get("edges") {
        let raw = raw.as_arr().ok_or_else(|| bad("'edges' must be an array"))?;
        for e in raw {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let pair = pair.ok_or_else(|| bad("each edge must be a [from,to] pair"))?;
            let u = pair[0].as_u64().ok_or_else(|| bad("edge endpoints must be u64"))?;
            let v2 = pair[1].as_u64().ok_or_else(|| bad("edge endpoints must be u64"))?;
            if u > u64::from(u32::MAX) || v2 > u64::from(u32::MAX) {
                return Err(bad("edge endpoint exceeds u32"));
            }
            edges.push((u as u32, v2 as u32));
        }
    }
    Ok(JobRequest { class, deadline, tasks, edges })
}

/// Encode a [`JobRequest`] in the submit-request shape (the inverse of
/// the decoder above) — used by client tooling to build `submit` lines.
pub fn job_request_to_json(r: &JobRequest) -> Json {
    Json::obj(vec![
        (
            "class",
            Json::Str(
                match r.class {
                    JobClass::Small => "Small",
                    JobClass::Medium => "Medium",
                    JobClass::Large => "Large",
                }
                .into(),
            ),
        ),
        (
            "deadline_us",
            match r.deadline {
                Some(d) => Json::U64(d.as_micros()),
                None => Json::Null,
            },
        ),
        (
            "tasks",
            Json::Arr(
                r.tasks
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("size", Json::F64(t.size.get())),
                            ("est_size", Json::F64(t.est_size.get())),
                            ("recovery_us", Json::U64(t.recovery.as_micros())),
                            (
                                "demand",
                                Json::obj(vec![
                                    ("cpu", Json::F64(t.demand.cpu)),
                                    ("mem", Json::F64(t.demand.mem)),
                                    ("disk", Json::F64(t.demand.disk)),
                                    ("bw", Json::F64(t.demand.bw)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                r.edges
                    .iter()
                    .map(|(u, v)| {
                        Json::Arr(vec![Json::U64(u64::from(*u)), Json::U64(u64::from(*v))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Build a complete `submit` request line from job requests.
pub fn submit_request(jobs: &[JobRequest]) -> Json {
    Json::obj(vec![
        ("op", Json::Str("submit".into())),
        ("jobs", Json::Arr(jobs.iter().map(job_request_to_json).collect())),
    ])
}

/// Decode one request line. `Err` carries a human-readable message the
/// server wraps in a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
    let op = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing 'op' field"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let jobs = v
                .get("jobs")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("'jobs' array is required"))?
                .iter()
                .map(job_request_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Submit(jobs))
        }
        "status" => {
            let id = v
                .get("job")
                .and_then(Json::as_u64)
                .filter(|id| *id <= u64::from(u32::MAX))
                .ok_or_else(|| bad("'job' (u32 id) is required"))?;
            Ok(Request::Status(JobId(id as u32)))
        }
        "metrics" => Ok(Request::Metrics),
        "snapshot" => Ok(Request::Snapshot),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Build a failure response line.
pub fn error_response(reason: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("reason", Json::Str(reason.to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

/// The outcome of executing one request.
pub struct Response {
    /// The response document (one line once serialized).
    pub body: Json,
    /// True when the request was `drain`: the server should stop
    /// accepting connections after writing this response.
    pub shutdown: bool,
}

/// Execute a request against the driver. The caller holds the driver
/// lock; simulation time is advanced by the server's clock tick, not
/// here (except `drain`, which runs the simulation dry).
pub fn handle(driver: &mut OnlineDriver, request: Request) -> Response {
    match request {
        Request::Ping => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("now_us", Json::U64(driver.now().as_micros())),
            ]),
            shutdown: false,
        },
        Request::Submit(requests) => match driver.submit(requests) {
            Ok(ids) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("ids", Json::Arr(ids.iter().map(|id| Json::U64(u64::from(id.0))).collect())),
                    ("next_boundary_us", Json::U64(driver.next_boundary().as_micros())),
                ]),
                shutdown: false,
            },
            Err(e) => {
                Response { body: error_response(e.reason(), &e.to_string()), shutdown: false }
            }
        },
        Request::Status(id) => match driver.status(id) {
            Some(JobStatus::Pending) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::U64(u64::from(id.0))),
                    ("state", Json::Str("pending".into())),
                ]),
                shutdown: false,
            },
            Some(JobStatus::Active(progress)) => Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::U64(u64::from(id.0))),
                    ("state", Json::Str("active".into())),
                    ("progress", codec::progress_to_json(&progress)),
                ]),
                shutdown: false,
            },
            None => Response {
                body: error_response("unknown_job", &format!("job {} was never admitted", id.0)),
                shutdown: false,
            },
        },
        Request::Metrics => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("now_us", Json::U64(driver.now().as_micros())),
                ("periods_elapsed", Json::U64(driver.periods_elapsed())),
                ("batches_scheduled", Json::U64(driver.batches_scheduled())),
                ("pending_tasks", Json::U64(driver.pending_tasks() as u64)),
                ("draining", Json::Bool(driver.is_draining())),
                ("metrics", codec::metrics_to_json(driver.metrics())),
            ]),
            shutdown: false,
        },
        Request::Snapshot => Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("snapshot", driver.snapshot().to_json()),
            ]),
            shutdown: false,
        },
        Request::Drain => {
            let snapshot = driver.drain();
            Response {
                body: Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                    ("snapshot", snapshot.to_json()),
                ]),
                shutdown: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use dsp_cluster::uniform;
    use dsp_preempt::DspPolicy;
    use dsp_sched::DspListScheduler;
    use dsp_sim::EngineConfig;
    use dsp_units::Time;

    fn driver() -> OnlineDriver {
        let params = dsp_core::config::Params::default();
        OnlineDriver::new(
            uniform(4, 1000.0, 2),
            EngineConfig {
                epoch: Dur::from_secs(5),
                sigma: Dur::from_millis(50),
                max_time: Time::from_secs(24 * 3600),
                lookahead: 4,
            },
            Dur::from_secs(300),
            Box::new(DspListScheduler::default()),
            Box::new(DspPolicy::new(params.dsp_params(true))),
            AdmissionConfig::default(),
        )
    }

    #[test]
    fn parses_the_full_verb_set() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(parse_request(r#"{"op":"snapshot"}"#).unwrap(), Request::Snapshot);
        assert_eq!(parse_request(r#"{"op":"drain"}"#).unwrap(), Request::Drain);
        assert_eq!(parse_request(r#"{"op":"status","job":3}"#).unwrap(), Request::Status(JobId(3)));
        let req = parse_request(
            r#"{"op":"submit","jobs":[{"class":"Medium","deadline_us":5000000,
                "tasks":[{"size":100},{"size":200,"est_size":180}],"edges":[[0,1]]}]}"#,
        )
        .unwrap();
        match req {
            Request::Submit(jobs) => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(jobs[0].class, JobClass::Medium);
                assert_eq!(jobs[0].deadline, Some(Dur::from_secs(5)));
                assert_eq!(jobs[0].tasks.len(), 2);
                assert_eq!(jobs[0].tasks[1].est_size, Mi::new(180.0));
                assert_eq!(jobs[0].edges, vec![(0, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"submit","jobs":[{"tasks":[{"size":-5}]}]}"#,
            r#"{"op":"submit","jobs":[{"tasks":[{}]}]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn submit_status_drain_over_the_handler() {
        let mut d = driver();
        let r = handle(
            &mut d,
            parse_request(
                r#"{"op":"submit","jobs":[{"tasks":[{"size":500},{"size":500}],"edges":[[0,1]]}]}"#,
            )
            .unwrap(),
        );
        assert_eq!(r.body.get("ok"), Some(&Json::Bool(true)));
        assert!(!r.shutdown);

        let r = handle(&mut d, Request::Status(JobId(0)));
        assert_eq!(r.body.get("state").and_then(Json::as_str), Some("pending"));
        let r = handle(&mut d, Request::Status(JobId(99)));
        assert_eq!(r.body.get("reason").and_then(Json::as_str), Some("unknown_job"));

        let r = handle(&mut d, Request::Drain);
        assert!(r.shutdown);
        let snap = r.body.get("snapshot").expect("snapshot attached");
        let decoded = crate::codec::Snapshot::from_json(snap).unwrap();
        assert_eq!(decoded.jobs.len(), 1);
        assert!(decoded.verify().passes(), "{:?}", decoded.verify());

        // Post-drain submissions surface the stable reason token.
        let r = handle(
            &mut d,
            parse_request(r#"{"op":"submit","jobs":[{"tasks":[{"size":1}]}]}"#).unwrap(),
        );
        assert_eq!(r.body.get("reason").and_then(Json::as_str), Some("draining"));
    }

    #[test]
    fn job_request_encoding_roundtrips() {
        let requests = vec![JobRequest {
            class: JobClass::Large,
            deadline: Some(Dur::from_secs(120)),
            tasks: vec![
                TaskSpec::sized(300.0).with_estimate(Mi::new(250.0)),
                TaskSpec::sized(400.0),
            ],
            edges: vec![(0, 1)],
        }];
        let line = submit_request(&requests).to_string();
        match parse_request(&line).unwrap() {
            Request::Submit(back) => assert_eq!(back, requests),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_are_single_lines() {
        let mut d = driver();
        let r = handle(&mut d, Request::Metrics);
        let line = r.body.to_string();
        assert!(!line.contains('\n'));
        assert!(parse(&line).is_ok());
    }
}
