//! The placement router: assigns submit batches to shards, aggregates
//! the per-shard read views into one federated reply, and coordinates
//! the two-phase federated drain (DESIGN.md §10.7).
//!
//! **Placement.** Shard `i` of `N` admits jobs on the strided id lane
//! `i, i+N, i+2N, …`, so `id % N` names the owning shard — the
//! "deterministic hash by JobId" baseline is realized structurally: the
//! router's round-robin batch cursor decides the lane, and the lane *is*
//! the hash. Two adaptive policies ride on top: `least-loaded` (argmin
//! of published `pending_tasks`, ties to the lowest index) and
//! `deadline` (the admission layer's feasibility pre-check run against
//! each shard's sub-cluster and published boundary; infeasible shards
//! are skipped, the least-loaded feasible one wins).
//!
//! **Federated reads.** With one shard, reads pass through untouched —
//! byte-identical to the pre-federation service. With `N > 1`, each
//! reply aggregates the per-shard [`StateSnapshot`]s: `state_version`
//! is the **max** of the per-shard versions and a `shard_versions`
//! array carries the whole vector. Per-shard versions are monotone
//! (each cell forbids regress), and max/min/sum of component-wise
//! monotone vectors are monotone, so a connection still never sees
//! `state_version`, `now_us`, or `periods_elapsed` go backwards even
//! though the N cells are read without any cross-shard lock.
//!
//! **Two-phase drain.** The coordinator first flips the federation-wide
//! `draining` latch and quiesces every shard (stop intake, ack), then
//! asks each shard to run dry and merges the per-shard snapshots into
//! one artifact over the full cluster — node ids are mapped back from
//! shard-local to global, so `dsp verify` audits the merged history
//! against the real inventory. A submit racing the drain is rerouted
//! around quiesced shards and, once every shard refuses, shed with the
//! pre-federation `draining` refusal — never dropped (see
//! [`Router::reroute_submit`]).

use crate::admission::{check_feasible, AdmitError};
use crate::codec::Snapshot;
use crate::driver::{JobRequest, JobStatus};
use crate::json::Json;
use crate::server::{
    draining_response, Command, Dispatch, QueuedRequest, ReplySink, Shared, Target,
};
use crate::state::{SnapshotCell, StateSnapshot};
use crate::{codec, wire};
use dsp_cluster::{ClusterSpec, NodeId};
use dsp_dag::JobId;
use dsp_metrics::RunMetrics;
use dsp_sim::{ExecHistory, Schedule};
use dsp_units::Time;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// How the router assigns a submit batch to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Deterministic baseline: batches round-robin across shards in
    /// arrival order; with the strided id lanes this *is* hash-by-JobId
    /// (`id % N` = owning shard). Independent of load, deterministic
    /// across restarts for the same submission order.
    Hash,
    /// Argmin of the shards' published `pending_tasks`; ties go to the
    /// lowest shard index.
    LeastLoaded,
    /// Deadline-feasibility-scored: run the admission pre-check against
    /// each shard's sub-cluster and published next boundary, then pick
    /// the least-loaded feasible shard (falling back to plain
    /// least-loaded when none passes or the batch carries no deadline).
    Deadline,
}

impl RoutePolicy {
    /// Parse a `--route` CLI value.
    pub fn parse(s: &str) -> Option<RoutePolicy> {
        match s {
            "hash" => Some(RoutePolicy::Hash),
            "least-loaded" => Some(RoutePolicy::LeastLoaded),
            "deadline" => Some(RoutePolicy::Deadline),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Hash => "hash",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::Deadline => "deadline",
        }
    }
}

/// A shard as the router sees it: its command queue, its read cell, and
/// its sub-cluster (for the deadline policy's feasibility scoring).
pub(crate) struct ShardHandle {
    pub(crate) commands: SyncSender<Command>,
    pub(crate) cell: Arc<SnapshotCell>,
    pub(crate) cluster: ClusterSpec,
}

/// The federation's routing fabric. Shared read-only by every front-end
/// and driver-owner thread; the only interior mutability is the batch
/// cursor and the drain latch.
pub(crate) struct Router {
    shards: Vec<ShardHandle>,
    coordinator: SyncSender<Command>,
    policy: RoutePolicy,
    /// Round-robin cursor for the hash policy: one step per submit
    /// batch, so a fixed submission order yields a fixed assignment.
    cursor: AtomicU64,
    /// Federation-wide intake latch, set by the coordinator *before* any
    /// shard quiesces: a reroute that exhausts the ring while this is up
    /// reports the pre-federation `draining` refusal.
    draining: AtomicBool,
    /// The full, unsplit inventory (merged artifacts report this).
    cluster: ClusterSpec,
    /// Global node-id offset per shard ([`ClusterSpec::split_offsets`]).
    offsets: Vec<u32>,
}

fn mask_bit(index: usize) -> u64 {
    1u64.checked_shl(index as u32).unwrap_or(0)
}

impl Router {
    pub(crate) fn new(
        shards: Vec<ShardHandle>,
        coordinator: SyncSender<Command>,
        policy: RoutePolicy,
        cluster: ClusterSpec,
        offsets: Vec<u32>,
    ) -> Router {
        debug_assert!(!shards.is_empty(), "a federation needs at least one shard");
        debug_assert_eq!(shards.len(), offsets.len());
        Router {
            shards,
            coordinator,
            policy,
            cursor: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            cluster,
            offsets,
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard 0's snapshot cell ([`crate::server::ServerHandle::reads`]).
    pub(crate) fn primary_cell(&self) -> Arc<SnapshotCell> {
        match self.shards.first() {
            Some(shard) => Arc::clone(&shard.cell),
            // Unreachable by construction; an empty dummy cell would cost
            // a Snapshot build, so just panic-free degrade via debug.
            None => unreachable_cell(),
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        // ordering: SeqCst — the drain latch pairs with nothing; it is a
        // single flag set once by the coordinator and polled on the
        // reroute path, where staleness only changes which stable
        // refusal token a raced submit receives.
        self.draining.load(Ordering::SeqCst)
    }

    /// Resolve a queued request to its destination exactly once. Drains
    /// go to the coordinator; submits to the policy-picked shard; reads
    /// (read-through mode, single-shard by construction) to shard 0.
    pub(crate) fn plan(&self, request: QueuedRequest, reply: ReplySink) -> Dispatch {
        match request {
            QueuedRequest::Write(wire::WriteRequest::Drain) => Dispatch {
                target: Target::Coordinator,
                command: Command::Write(wire::WriteRequest::Drain, reply, 0),
            },
            QueuedRequest::Write(wire::WriteRequest::Submit(jobs)) => {
                let shard = self.pick_shard(&jobs);
                Dispatch {
                    target: Target::Shard(shard),
                    command: Command::Write(wire::WriteRequest::Submit(jobs), reply, 0),
                }
            }
            QueuedRequest::Read(request) => {
                Dispatch { target: Target::Shard(0), command: Command::ReadThrough(request, reply) }
            }
        }
    }

    fn queue_for(&self, target: Target) -> Option<&SyncSender<Command>> {
        match target {
            Target::Shard(index) => self.shards.get(index).map(|s| &s.commands),
            Target::Coordinator => Some(&self.coordinator),
        }
    }

    /// Blocking send (threads front end). Err = destination gone.
    pub(crate) fn send(&self, dispatch: Dispatch) -> Result<(), ()> {
        match self.queue_for(dispatch.target) {
            Some(queue) => queue.send(dispatch.command).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Non-blocking send (reactor front end); a `Full` refusal hands the
    /// dispatch back intact so the caller can park and retry it against
    /// the *same* target — backpressure never re-routes a request.
    pub(crate) fn try_send(&self, dispatch: Dispatch) -> Result<(), TrySendError<Dispatch>> {
        let Dispatch { target, command } = dispatch;
        let Some(queue) = self.queue_for(target) else {
            return Err(TrySendError::Disconnected(Dispatch { target, command }));
        };
        queue.try_send(command).map_err(|e| match e {
            TrySendError::Full(command) => TrySendError::Full(Dispatch { target, command }),
            TrySendError::Disconnected(command) => {
                TrySendError::Disconnected(Dispatch { target, command })
            }
        })
    }

    /// Broadcast a clock tick to every shard. False once every shard
    /// queue is gone (the ticker exits then).
    pub(crate) fn tick_all(&self, target: Time) -> bool {
        let mut alive = false;
        for shard in &self.shards {
            match shard.commands.try_send(Command::Tick(target)) {
                // A full queue means that owner is busy; skipping its
                // tick is fine — the next broadcast re-targets.
                Ok(()) | Err(TrySendError::Full(_)) => alive = true,
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
        alive
    }

    /// Pick the shard a submit batch lands on (the batch is the
    /// atomicity unit: `submit` is all-or-nothing, so it must land on
    /// one driver whole).
    fn pick_shard(&self, jobs: &[JobRequest]) -> usize {
        let n = self.shards.len();
        if n <= 1 {
            return 0;
        }
        match self.policy {
            RoutePolicy::Hash => {
                // ordering: Relaxed — a pure round-robin counter; no
                // other data is published through it, and any
                // interleaving of concurrent submitters is an equally
                // valid arrival order.
                (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % n
            }
            RoutePolicy::LeastLoaded => self.least_loaded(u64::MAX),
            RoutePolicy::Deadline => self.deadline_pick(jobs),
        }
    }

    /// Argmin of published `pending_tasks` over the shards whose bit is
    /// set in `allowed`; ties to the lowest index. `u64::MAX` = all.
    fn least_loaded(&self, allowed: u64) -> usize {
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for (i, shard) in self.shards.iter().enumerate() {
            if allowed & mask_bit(i) == 0 {
                continue;
            }
            let load = shard.cell.load().pending_tasks;
            if load < best_load {
                best = i;
                best_load = load;
            }
        }
        best
    }

    /// Deadline policy: score each shard with the admission layer's own
    /// feasibility pre-check (same [`check_feasible`] the driver runs at
    /// admission, against the shard's sub-cluster and published next
    /// boundary), then pick the least-loaded feasible shard.
    fn deadline_pick(&self, jobs: &[JobRequest]) -> usize {
        if jobs.iter().all(|j| j.deadline.is_none()) {
            return self.least_loaded(u64::MAX);
        }
        let mut feasible = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let view = shard.cell.load();
            let mut batch = Vec::with_capacity(jobs.len());
            let mut valid = true;
            for (k, request) in jobs.iter().enumerate() {
                // Dummy ids: only deadlines, sizes, and edges matter to
                // the pre-check. A malformed request is "feasible
                // anywhere" — every driver rejects it with the same
                // `invalid` reply, so placement cannot change the bytes.
                match request.clone().into_job(JobId(k as u32), view.now) {
                    Ok(job) => batch.push(job),
                    Err(_) => {
                        valid = false;
                        break;
                    }
                }
            }
            if !valid || check_feasible(&batch, &shard.cluster, view.next_boundary).is_ok() {
                feasible |= mask_bit(i);
            }
        }
        if feasible == 0 {
            self.least_loaded(u64::MAX)
        } else {
            self.least_loaded(feasible)
        }
    }

    /// Hand a misrouted drain to the coordinator (defense in depth — the
    /// planner never targets a shard with one).
    pub(crate) fn forward_drain(&self, reply: ReplySink) {
        match self.coordinator.try_send(Command::Write(wire::WriteRequest::Drain, reply, 0)) {
            Ok(()) => {}
            Err(TrySendError::Full(command) | TrySendError::Disconnected(command)) => {
                if let Command::Write(_, reply, _) = command {
                    reply.deliver(draining_response());
                }
            }
        }
    }

    /// The drain-vs-submit race, resolved (DESIGN.md §10.7): shard
    /// `from` found itself quiesced with this submit already queued.
    /// Forward the batch to the lowest-indexed shard not yet tried;
    /// every forward carries the visited bitmask, so the ring is walked
    /// at most once. When every shard has refused (or its queue is
    /// unreachable), the batch is shed with a stable token: `draining`
    /// (the exact pre-federation refusal) when the whole federation is
    /// draining, `quiesced` when only part of the ring is closed.
    pub(crate) fn reroute_submit(
        &self,
        from: usize,
        jobs: Vec<JobRequest>,
        reply: ReplySink,
        tried: u64,
    ) {
        let tried = tried | mask_bit(from);
        let mut batch = Some((jobs, reply));
        for (i, shard) in self.shards.iter().enumerate() {
            if tried & mask_bit(i) != 0 {
                continue;
            }
            let Some((jobs, reply)) = batch.take() else { return };
            let command = Command::Write(wire::WriteRequest::Submit(jobs), reply, tried);
            match shard.commands.try_send(command) {
                Ok(()) => return,
                // Full counts as tried: the reroute path must never
                // block a driver-owner thread on a sibling's queue.
                Err(TrySendError::Full(command) | TrySendError::Disconnected(command)) => {
                    if let Command::Write(wire::WriteRequest::Submit(jobs), reply, _) = command {
                        batch = Some((jobs, reply));
                    }
                }
            }
        }
        if let Some((_jobs, reply)) = batch {
            let body = if self.is_draining() {
                wire::error_response("draining", &AdmitError::Draining.to_string())
            } else {
                wire::error_response(
                    wire::REASON_QUIESCED,
                    "every shard is quiesced or saturated; no shard can admit this batch",
                )
            };
            reply.deliver(wire::Response { body, shutdown: false });
        }
    }

    /// Quiesce one shard and wait for the ack (phase one, for a single
    /// shard — the [`crate::server::ServerHandle::quiesce_shard`] hook).
    pub(crate) fn quiesce_shard(&self, index: usize) -> bool {
        let Some(shard) = self.shards.get(index) else {
            return false;
        };
        let (ack_tx, ack_rx) = sync_channel(1);
        shard.commands.send(Command::Quiesce(ack_tx)).is_ok() && ack_rx.recv().is_ok()
    }

    /// The two-phase federated drain, run on the coordinator thread.
    /// Phase one: latch `draining`, then quiesce shard by shard (each
    /// ack means that shard's refusal is published). Phase two: ask
    /// every shard to run dry, collect the per-shard snapshots in shard
    /// order, merge. Idempotent: a second `drain` replays both phases
    /// against already-drained shards and rebuilds the same artifact.
    pub(crate) fn drain_all(&self) -> wire::Response {
        // ordering: SeqCst — see `is_draining`; latched before any shard
        // quiesces so a raced submit that exhausts the reroute ring gets
        // the pre-federation `draining` refusal, not `quiesced`.
        self.draining.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            let (ack_tx, ack_rx) = sync_channel(1);
            if shard.commands.send(Command::Quiesce(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (out_tx, out_rx) = sync_channel(1);
            match shard.commands.send(Command::DrainShard(out_tx)) {
                Ok(()) => pending.push(Some(out_rx)),
                Err(_) => pending.push(None),
            }
        }
        let mut parts = Vec::with_capacity(self.shards.len());
        for out_rx in pending.into_iter().flatten() {
            if let Ok(snapshot) = out_rx.recv() {
                parts.push(*snapshot);
            }
        }
        if parts.len() != self.shards.len() {
            // A shard owner exited before draining (shutdown race): shut
            // down, but do not fabricate a partial artifact.
            return wire::Response {
                body: wire::error_response("draining", "a shard exited before its drain finished"),
                shutdown: true,
            };
        }
        let merged = self.merge_snapshots(parts);
        wire::Response {
            body: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
                ("snapshot", merged.to_json()),
            ]),
            shutdown: true,
        }
    }

    /// Merge per-shard snapshots (in shard order) into one artifact over
    /// the full cluster: node ids map back from shard-local to global
    /// via the split offsets, jobs merge by ascending id, and schedule/
    /// history rows sort by (job, task) with the stable sort preserving
    /// each shard's intra-task segment order. A single part passes
    /// through untouched — the 1-shard artifact is byte-identical to the
    /// pre-federation drain.
    pub(crate) fn merge_snapshots(&self, mut parts: Vec<Snapshot>) -> Snapshot {
        if parts.len() == 1 {
            if let Some(single) = parts.pop() {
                return single;
            }
        }
        let sigma = parts.first().map(|p| p.history.sigma).unwrap_or_default();
        let mut jobs = Vec::new();
        let mut schedule = Schedule::new();
        let mut history = ExecHistory { sigma, tasks: Vec::new() };
        let mut metrics = RunMetrics::default();
        for (part, offset) in parts.into_iter().zip(self.offsets.iter().copied()) {
            jobs.extend(part.jobs);
            for mut a in part.schedule.assignments {
                a.node = NodeId(a.node.0 + offset);
                schedule.assignments.push(a);
            }
            for mut t in part.history.tasks {
                t.node = NodeId(t.node.0 + offset);
                history.tasks.push(t);
            }
            metrics.merge_from(&part.metrics);
        }
        jobs.sort_by_key(|j| j.id.0);
        schedule.assignments.sort_by_key(|a| (a.task.job.0, a.task.index));
        history.tasks.sort_by_key(|t| (t.task.job.0, t.task.index));
        Snapshot { cluster: self.cluster.clone(), jobs, schedule, history, metrics }
    }

    /// Serve a read from the published snapshot cells. One shard passes
    /// straight through to [`wire::handle_read`] — byte-identical to the
    /// pre-federation read lane. More than one aggregates (see the
    /// module docs for the monotonicity argument).
    pub(crate) fn handle_read(&self, request: wire::ReadRequest) -> wire::Response {
        if self.shards.len() == 1 {
            if let Some(shard) = self.shards.first() {
                return wire::handle_read(&shard.cell.load(), request);
            }
        }
        let views: Vec<Arc<StateSnapshot>> = self.shards.iter().map(|s| s.cell.load()).collect();
        self.federated_read(&views, request)
    }

    fn federated_read(
        &self,
        views: &[Arc<StateSnapshot>],
        request: wire::ReadRequest,
    ) -> wire::Response {
        let max_version = views.iter().map(|v| v.version).max().unwrap_or(0);
        let version = ("state_version", Json::U64(max_version));
        let shard_versions =
            ("shard_versions", Json::Arr(views.iter().map(|v| Json::U64(v.version)).collect()));
        // `now` and `periods_elapsed` aggregate with **min**: each cell
        // is monotone, so the min over a fixed set of monotone readings
        // is monotone too — and min is the honest federation clock ("all
        // shards have reached at least t").
        let now = views.iter().map(|v| v.now).min().unwrap_or(Time::ZERO);
        let body = match request {
            wire::ReadRequest::Ping => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("now_us", Json::U64(now.as_micros())),
                version,
                shard_versions,
            ]),
            wire::ReadRequest::Status(id) => {
                let home = (id.0 as usize) % views.len().max(1);
                let Some(view) = views.get(home) else {
                    return wire::Response {
                        body: wire::error_response(
                            "unknown_job",
                            &format!("job {} was never admitted", id.0),
                        ),
                        shutdown: false,
                    };
                };
                match view.status(id) {
                    Some(JobStatus::Pending) => Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("job", Json::U64(u64::from(id.0))),
                        ("state", Json::Str("pending".into())),
                        version,
                        shard_versions,
                    ]),
                    Some(JobStatus::Active(progress)) => Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("job", Json::U64(u64::from(id.0))),
                        ("state", Json::Str("active".into())),
                        ("progress", codec::progress_to_json(progress)),
                        version,
                        shard_versions,
                    ]),
                    None => {
                        return wire::Response {
                            body: wire::error_response(
                                "unknown_job",
                                &format!("job {} was never admitted", id.0),
                            ),
                            shutdown: false,
                        }
                    }
                }
            }
            wire::ReadRequest::Metrics => {
                let mut merged = RunMetrics::default();
                for view in views {
                    merged.merge_from(&view.metrics);
                }
                let pending: u64 = views.iter().map(|v| v.pending_tasks as u64).sum();
                let batches: u64 = views.iter().map(|v| v.batches_scheduled).sum();
                let periods = views.iter().map(|v| v.periods_elapsed).min().unwrap_or(0);
                let draining = self.is_draining() || views.iter().any(|v| v.draining);
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("now_us", Json::U64(now.as_micros())),
                    ("periods_elapsed", Json::U64(periods)),
                    ("batches_scheduled", Json::U64(batches)),
                    ("pending_tasks", Json::U64(pending)),
                    ("draining", Json::Bool(draining)),
                    ("metrics", codec::metrics_to_json(&merged)),
                    version,
                    shard_versions,
                ])
            }
            wire::ReadRequest::Snapshot => {
                let parts: Vec<Snapshot> =
                    views.iter().map(|v| Snapshot::clone(&v.artifact)).collect();
                let merged = self.merge_snapshots(parts);
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("snapshot", merged.to_json()),
                    version,
                    shard_versions,
                ])
            }
        };
        wire::Response { body, shutdown: false }
    }
}

/// Unreachable-by-construction fallback for [`Router::primary_cell`]
/// on an empty shard set: a throwaway cell over an empty snapshot.
fn unreachable_cell() -> Arc<SnapshotCell> {
    debug_assert!(false, "router built with zero shards");
    let driver = crate::driver::OnlineDriver::new(
        dsp_cluster::uniform(1, 1.0, 1),
        dsp_sim::EngineConfig::default(),
        dsp_units::Dur::from_secs(1),
        Box::new(dsp_sched::FifoScheduler),
        Box::new(dsp_sim::NoPreempt),
        crate::admission::AdmissionConfig::default(),
    );
    let artifact = Arc::new(driver.snapshot());
    Arc::new(SnapshotCell::new(driver.state_snapshot(0, artifact)))
}

/// The drain-coordinator loop: owns nothing but the drain protocol.
/// Lives exactly as long as the shard owners; exits once shutdown is
/// flagged and its queue stays empty for one poll interval.
pub(crate) fn coordinate(commands: Receiver<Command>, shared: &Shared) {
    loop {
        let command = match commands.recv_timeout(Duration::from_millis(50)) {
            Ok(c) => c,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match command {
            Command::Write(wire::WriteRequest::Drain, reply, _) => {
                let response = shared.router.drain_all();
                let shutdown = response.shutdown;
                reply.deliver(response);
                if shutdown {
                    shared.stop();
                }
            }
            // Nothing else is ever planned onto the coordinator; answer
            // misrouted sinks rather than leaving a client hanging.
            Command::Write(_, reply, _) | Command::ReadThrough(_, reply) => {
                reply.deliver(draining_response());
            }
            Command::Tick(_) | Command::Quiesce(_) | Command::DrainShard(_) => {}
        }
    }
}
