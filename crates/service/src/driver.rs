//! The online driver: an [`Engine`] advanced incrementally under a live
//! admission queue.
//!
//! This is the paper's two-phase loop run as a *service* instead of a
//! batch experiment: submissions buffer in a bounded pending queue, the
//! offline scheduler fires at every `sched_period` boundary over exactly
//! the jobs that arrived since the last one, the batch is placed onto the
//! *partially busy* cluster (`schedule_onto` with per-node backlog), and
//! between boundaries the engine's epoch preemption loop runs
//! continuously. Drain flushes the queue, runs the simulation dry, and
//! emits a self-contained [`Snapshot`] that `dsp verify` can audit.

use crate::admission::{check_feasible, AdmissionConfig, AdmitError};
use crate::codec::Snapshot;
use crate::state::StateSnapshot;
use dsp_dag::{validate_jobs, Dag, Job, JobClass, JobId, TaskSpec};
use dsp_metrics::RunMetrics;
use dsp_sim::{Engine, EngineConfig, FaultPlan, JobProgress, PreemptPolicy, Schedule};
use dsp_units::{Dur, Time};
use std::sync::Arc;

/// A job as a client submits it: no id (the service assigns the next
/// monotone [`JobId`]), no arrival (submission instant), and a deadline
/// *relative* to submission (`None` = best-effort, no deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Size class label.
    pub class: JobClass,
    /// Deadline as an offset from the submission instant; `None` maps to
    /// the `Time::MAX` "no deadline" sentinel.
    pub deadline: Option<Dur>,
    /// Task specifications.
    pub tasks: Vec<TaskSpec>,
    /// Dependency edges over the task indices.
    pub edges: Vec<(u32, u32)>,
}

impl JobRequest {
    /// Strip a fully-formed [`Job`] back to submission form: the id and
    /// arrival are dropped (the service reassigns both) and the absolute
    /// deadline becomes an offset from the job's own arrival. Lets
    /// generated workloads (`dsp_trace::generate_workload`) be replayed
    /// through the wire protocol.
    pub fn from_job(job: &Job) -> JobRequest {
        JobRequest {
            class: job.class,
            deadline: if job.deadline == Time::MAX {
                None
            } else {
                Some(job.deadline.since(job.arrival))
            },
            tasks: job.tasks.clone(),
            edges: job.dag.edges().collect(),
        }
    }

    pub(crate) fn into_job(self, id: JobId, arrival: Time) -> Result<Job, AdmitError> {
        if self.tasks.is_empty() {
            return Err(AdmitError::Invalid(format!("job {} has no tasks", id.0)));
        }
        let n = self.tasks.len();
        let mut dag = Dag::new(n);
        for (u, v) in self.edges {
            if u as usize >= n || v as usize >= n {
                return Err(AdmitError::Invalid(format!(
                    "edge ({u},{v}) out of range for {n} tasks"
                )));
            }
            dag.add_edge(u, v)
                .map_err(|e| AdmitError::Invalid(format!("edge ({u},{v}): {e:?}")))?;
        }
        let deadline = match self.deadline {
            Some(d) => arrival + d,
            None => Time::MAX,
        };
        Ok(Job::new(id, self.class, arrival, deadline, self.tasks, dag))
    }
}

/// Where a known job currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Buffered, waiting for the next scheduling-period boundary.
    Pending,
    /// Injected into the engine; live progress attached.
    Active(JobProgress),
}

/// The long-running service core. Owns the engine, scheduler, and
/// preemption policy; single-threaded by design. The server gives it to
/// exactly one driver-owner thread that drains a bounded command queue
/// and publishes an immutable [`StateSnapshot`] after every mutation —
/// read requests are served from the published view and never reach the
/// driver (DESIGN.md §10.5).
pub struct OnlineDriver {
    engine: Engine,
    scheduler: Box<dyn dsp_sched::Scheduler + Send>,
    policy: Box<dyn PreemptPolicy + Send>,
    sched_period: Dur,
    admission: AdmissionConfig,
    /// Jobs admitted but not yet handed to the engine, ascending id.
    pending: Vec<Job>,
    pending_tasks: usize,
    next_id: u32,
    /// Id step between consecutively admitted jobs. 1 for a standalone
    /// driver; shard `i` of an `N`-shard federation uses base `i`, stride
    /// `N`, so `id % N` names the owning shard and the federated id space
    /// stays collision-free without coordination (DESIGN.md §10.7).
    id_stride: u32,
    /// Estimated backlog horizon per node, maintained exactly like
    /// `dsp_core::experiment::periodic_schedules` does offline.
    busy_until: Vec<Time>,
    next_boundary: Time,
    /// All period batches merged — the offline plan `dsp verify` audits.
    combined: Schedule,
    draining: bool,
    periods_elapsed: u64,
    batches_scheduled: u64,
}

impl OnlineDriver {
    /// Build a driver over an empty cluster-backed engine. `sched_period`
    /// is the offline phase's cadence; the epoch cadence rides in `cfg`.
    pub fn new(
        cluster: dsp_cluster::ClusterSpec,
        cfg: EngineConfig,
        sched_period: Dur,
        scheduler: Box<dyn dsp_sched::Scheduler + Send>,
        policy: Box<dyn PreemptPolicy + Send>,
        admission: AdmissionConfig,
    ) -> Self {
        assert!(!sched_period.is_zero(), "sched_period must be positive");
        let nodes = cluster.len();
        OnlineDriver {
            engine: Engine::new(Vec::new(), cluster, cfg),
            scheduler,
            policy,
            sched_period,
            admission,
            pending: Vec::new(),
            pending_tasks: 0,
            next_id: 0,
            id_stride: 1,
            busy_until: vec![Time::ZERO; nodes],
            next_boundary: Time::ZERO + sched_period,
            combined: Schedule::new(),
            draining: false,
            periods_elapsed: 0,
            batches_scheduled: 0,
        }
    }

    /// Restrict this driver to the strided id lane `base, base+stride,
    /// base+2·stride, …` — shard `base` of a `stride`-shard federation.
    /// Must be applied before any admission; the default lane (`0, 1`)
    /// is the pre-federation behavior, byte for byte.
    pub fn with_id_lane(mut self, base: u32, stride: u32) -> Self {
        assert!(stride >= 1, "id stride must be positive");
        assert!(base < stride, "id lane base must be below the stride");
        assert_eq!(self.next_id, 0, "id lane must be set before any admission");
        self.next_id = base;
        self.id_stride = stride;
        self
    }

    /// Stop admitting new work without draining the simulation: every
    /// subsequent [`OnlineDriver::submit`] fails with
    /// [`AdmitError::Draining`], while ticks keep advancing whatever is
    /// already in flight. Phase one of the federation's two-phase drain;
    /// [`OnlineDriver::drain`] is phase two.
    pub fn quiesce(&mut self) {
        self.draining = true;
    }

    /// Current simulation instant.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// The next scheduling-period boundary.
    pub fn next_boundary(&self) -> Time {
        self.next_boundary
    }

    /// Scheduling-period boundaries crossed so far.
    pub fn periods_elapsed(&self) -> u64 {
        self.periods_elapsed
    }

    /// Non-empty batches handed to the offline scheduler so far.
    pub fn batches_scheduled(&self) -> u64 {
        self.batches_scheduled
    }

    /// Tasks buffered in the pending queue.
    pub fn pending_tasks(&self) -> usize {
        self.pending_tasks
    }

    /// True once [`OnlineDriver::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Live counters.
    pub fn metrics(&self) -> &RunMetrics {
        self.engine.metrics()
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &dsp_cluster::ClusterSpec {
        self.engine.cluster()
    }

    /// Submit a batch of job requests. All-or-nothing: either every job
    /// in the batch is admitted (ids returned, ascending) or none is.
    pub fn submit(&mut self, requests: Vec<JobRequest>) -> Result<Vec<JobId>, AdmitError> {
        if self.draining {
            return Err(AdmitError::Draining);
        }
        if requests.is_empty() {
            return Err(AdmitError::Invalid("empty submission batch".into()));
        }
        let new_tasks: usize = requests.iter().map(|r| r.tasks.len()).sum();
        if self.pending_tasks + new_tasks > self.admission.max_pending_tasks {
            return Err(AdmitError::Backpressure {
                pending_tasks: self.pending_tasks,
                limit: self.admission.max_pending_tasks,
            });
        }
        let arrival = self.now();
        let mut jobs = Vec::with_capacity(requests.len());
        for (k, req) in requests.into_iter().enumerate() {
            jobs.push(req.into_job(JobId(self.next_id + k as u32 * self.id_stride), arrival)?);
        }
        validate_jobs(&jobs).map_err(|e| AdmitError::Invalid(format!("{e:?}")))?;
        if self.admission.check_feasibility {
            check_feasible(&jobs, self.engine.cluster(), self.next_boundary)?;
        }
        let ids: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        self.next_id += jobs.len() as u32 * self.id_stride;
        self.pending_tasks += new_tasks;
        self.pending.extend(jobs);
        Ok(ids)
    }

    /// Where does `id` stand right now? `None` for ids never admitted.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        if self.pending.iter().any(|j| j.id == id) {
            return Some(JobStatus::Pending);
        }
        self.engine.job_progress(id).map(JobStatus::Active)
    }

    /// Inject a fault plan into the live engine (instants in the past are
    /// clamped to "now" by the engine).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.engine.add_faults(plan);
    }

    /// Advance simulation time to `t`, crossing every scheduling-period
    /// boundary on the way: at each boundary the pending batch is
    /// scheduled onto the backlogged cluster and injected; between
    /// boundaries the engine runs its epoch preemption loop.
    pub fn advance_to(&mut self, t: Time) {
        while self.next_boundary <= t {
            let boundary = self.next_boundary;
            self.engine.step_until(self.policy.as_mut(), boundary);
            self.flush_pending_at(boundary);
            self.periods_elapsed += 1;
            self.next_boundary = boundary + self.sched_period;
        }
        self.engine.step_until(self.policy.as_mut(), t);
    }

    /// Schedule and inject the pending batch at instant `at` (a period
    /// boundary, or "now" during drain). No-op when the queue is empty.
    fn flush_pending_at(&mut self, at: Time) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        self.pending_tasks = 0;
        let schedule =
            self.scheduler.schedule_onto(&batch, self.engine.cluster(), at, &self.busy_until);
        for a in &schedule.assignments {
            // The batch is small (one period's arrivals) and sorted by id;
            // a linear probe is fine here.
            if let Some(job) = batch.iter().find(|j| j.id == a.task.job) {
                let rate = self.engine.cluster().node(a.node).rate();
                let fin = a.start + job.task(a.task.index).est_exec_time(rate);
                let slot = &mut self.busy_until[a.node.idx()];
                *slot = (*slot).max(fin);
            }
        }
        self.engine.add_jobs(batch);
        self.engine.add_batch(at, schedule.clone());
        self.combined.extend(schedule);
        self.batches_scheduled += 1;
    }

    /// Stop admitting, flush the queue immediately, run the simulation
    /// dry, and return the final auditable snapshot. Equivalent to
    /// [`OnlineDriver::drain_with`] with a no-op observer.
    pub fn drain(&mut self) -> Snapshot {
        self.drain_with(&mut |_| {})
    }

    /// Drain incrementally: flush the queue, then advance boundary by
    /// boundary until the engine idles, calling `observe` after the flush
    /// and after every boundary so the server can publish intermediate
    /// snapshots — readers watching a long drain see `now`,
    /// `periods_elapsed`, and task counters move monotonically instead of
    /// one frozen pre-drain view. The event order (and therefore the
    /// final history, metrics, and schedule) is identical to a single
    /// `step_until(Time::MAX)`: slicing a `step_until` is exactly how
    /// [`OnlineDriver::advance_to`] already drives the engine.
    pub fn drain_with(&mut self, observe: &mut dyn FnMut(&OnlineDriver)) -> Snapshot {
        self.draining = true;
        let now = self.now();
        self.flush_pending_at(now);
        // Prime the engine before consulting `idle()`: batches staged on a
        // never-stepped engine are not yet counted as pending injections, so
        // without this step a drain issued before the first tick would report
        // idle and skip the simulation entirely.
        self.engine.step_until(self.policy.as_mut(), now);
        observe(self);
        while !self.engine.idle() {
            let before = self.now();
            let boundary = self.next_boundary;
            self.advance_to(boundary);
            if self.now() == before {
                // The engine clamped at `max_time` short of the next
                // boundary; run the tail dry in one final step.
                self.engine.step_until(self.policy.as_mut(), Time::MAX);
                observe(self);
                break;
            }
            observe(self);
        }
        self.snapshot()
    }

    /// The current auditable state: jobs injected so far, the merged
    /// offline plan, execution history, and live metrics. During a run
    /// the history contains incomplete tasks; after [`OnlineDriver::drain`]
    /// it is final. This is the **only** constructor of [`Snapshot`] in
    /// the service: the drain return value, the `snapshot` wire op, and
    /// the read lane's published artifact are all built here.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cluster: self.engine.cluster().clone(),
            jobs: self.engine.jobs().to_vec(),
            schedule: self.combined.clone(),
            history: self.engine.history(),
            metrics: self.engine.metrics().clone(),
        }
    }

    /// A cheap change stamp over everything [`OnlineDriver::snapshot`]
    /// serializes: equal stamps across two instants mean the artifact
    /// would be byte-identical, so the publisher can reuse the previous
    /// `Arc` instead of re-cloning jobs and history on quiet ticks.
    pub fn change_stamp(&self) -> (u64, u64, u64) {
        (self.engine.events_processed(), self.batches_scheduled, u64::from(self.next_id))
    }

    /// Every known job's status, ascending id. Pending jobs always carry
    /// ids above every injected job (a flush empties the whole queue), so
    /// engine order followed by queue order is already sorted.
    pub fn statuses(&self) -> Vec<(JobId, JobStatus)> {
        let mut out = Vec::with_capacity(self.engine.jobs().len() + self.pending.len());
        for job in self.engine.jobs() {
            if let Some(progress) = self.engine.job_progress(job.id) {
                out.push((job.id, JobStatus::Active(progress)));
            }
        }
        out.extend(self.pending.iter().map(|j| (j.id, JobStatus::Pending)));
        out
    }

    /// Build the read lane's published view (see [`StateSnapshot`]).
    /// `version` is the publish sequence number; `artifact` is the
    /// auditable snapshot, passed in so the publisher can share one `Arc`
    /// across quiet ticks (same [`OnlineDriver::change_stamp`]).
    pub fn state_snapshot(&self, version: u64, artifact: Arc<Snapshot>) -> StateSnapshot {
        StateSnapshot::new(
            version,
            self.now(),
            self.next_boundary,
            self.periods_elapsed,
            self.batches_scheduled,
            self.pending_tasks,
            self.draining,
            self.engine.metrics().clone(),
            self.statuses(),
            artifact,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_cluster::uniform;
    use dsp_preempt::DspPolicy;
    use dsp_sched::DspListScheduler;
    use dsp_units::Mi;

    fn driver(max_pending: usize) -> OnlineDriver {
        let cfg = EngineConfig {
            epoch: Dur::from_secs(5),
            sigma: Dur::from_millis(50),
            max_time: Time::from_secs(24 * 3600),
            lookahead: 4,
        };
        let params = dsp_core::config::Params::default();
        OnlineDriver::new(
            uniform(4, 1000.0, 2),
            cfg,
            Dur::from_secs(300),
            Box::new(DspListScheduler::default()),
            Box::new(DspPolicy::new(params.dsp_params(true))),
            AdmissionConfig { max_pending_tasks: max_pending, check_feasibility: true },
        )
    }

    fn chain_request(n: usize, mi: f64, deadline: Option<Dur>) -> JobRequest {
        JobRequest {
            class: JobClass::Small,
            deadline,
            tasks: vec![TaskSpec::sized(mi); n],
            edges: (1..n as u32).map(|v| (v - 1, v)).collect(),
        }
    }

    #[test]
    fn jobs_flow_through_period_boundaries() {
        let mut d = driver(1000);
        let ids = d.submit(vec![chain_request(4, 500.0, None)]).unwrap();
        assert_eq!(ids, vec![JobId(0)]);
        assert_eq!(d.status(JobId(0)), Some(JobStatus::Pending));

        // Nothing is scheduled before the boundary...
        d.advance_to(Time::from_secs(299));
        assert_eq!(d.status(JobId(0)), Some(JobStatus::Pending));
        // ...and the batch goes live at it.
        d.advance_to(Time::from_secs(301));
        assert!(matches!(d.status(JobId(0)), Some(JobStatus::Active(_))));
        assert_eq!(d.batches_scheduled(), 1);

        // 4 chained 500 ms tasks finish well before the next boundary.
        d.advance_to(Time::from_secs(400));
        match d.status(JobId(0)) {
            Some(JobStatus::Active(p)) => assert!(p.completed, "{p:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn backpressure_sheds_oversized_batches() {
        let mut d = driver(6);
        d.submit(vec![chain_request(4, 100.0, None)]).unwrap();
        let err = d.submit(vec![chain_request(4, 100.0, None)]).unwrap_err();
        assert_eq!(err.reason(), "backpressure");
        // The queue drains at the boundary and capacity returns.
        d.advance_to(Time::from_secs(300));
        d.submit(vec![chain_request(4, 100.0, None)]).unwrap();
    }

    #[test]
    fn infeasible_deadline_is_rejected_before_queueing() {
        let mut d = driver(1000);
        // Critical path ~40 s, but the deadline lands before the first
        // boundary can even fire.
        let err = d.submit(vec![chain_request(40, 1000.0, Some(Dur::from_secs(10)))]).unwrap_err();
        assert_eq!(err.reason(), "infeasible");
        assert_eq!(d.pending_tasks(), 0, "rejected batch must not occupy the queue");
    }

    #[test]
    fn submissions_after_drain_are_refused() {
        let mut d = driver(1000);
        d.submit(vec![chain_request(3, 200.0, None)]).unwrap();
        let snap = d.drain();
        assert!(snap.verify().passes(), "{:?}", snap.verify());
        assert_eq!(snap.jobs.len(), 1);
        assert!(snap.history.tasks.iter().all(|t| t.completed));
        let err = d.submit(vec![chain_request(1, 100.0, None)]).unwrap_err();
        assert_eq!(err.reason(), "draining");
    }

    #[test]
    fn invalid_batches_are_all_or_nothing() {
        let mut d = driver(1000);
        let good = chain_request(2, 100.0, None);
        let bad = JobRequest {
            class: JobClass::Small,
            deadline: None,
            tasks: vec![TaskSpec::sized(100.0)],
            edges: vec![(0, 5)],
        };
        let err = d.submit(vec![good, bad]).unwrap_err();
        assert_eq!(err.reason(), "invalid");
        assert_eq!(d.pending_tasks(), 0);
        // Ids were not burned: the next admit still starts at 0.
        let ids = d.submit(vec![chain_request(1, 100.0, None)]).unwrap();
        assert_eq!(ids, vec![JobId(0)]);
    }

    #[test]
    fn id_lane_strides_and_quiesce_blocks_intake() {
        let mut d = driver(1000).with_id_lane(1, 4);
        let ids =
            d.submit(vec![chain_request(2, 100.0, None), chain_request(2, 100.0, None)]).unwrap();
        assert_eq!(ids, vec![JobId(1), JobId(5)]);
        let ids = d.submit(vec![chain_request(1, 100.0, None)]).unwrap();
        assert_eq!(ids, vec![JobId(9)]);
        d.quiesce();
        assert!(d.is_draining());
        let err = d.submit(vec![chain_request(1, 100.0, None)]).unwrap_err();
        assert_eq!(err.reason(), "draining");
        // Already-admitted work still runs dry under the same lane.
        let snap = d.drain();
        assert!(snap.verify().passes(), "{:?}", snap.verify());
        assert_eq!(snap.jobs.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn estimate_only_requests_still_admit() {
        let mut d = driver(1000);
        let mut req = chain_request(2, 100.0, None);
        req.tasks[0] = TaskSpec::sized(100.0).with_estimate(Mi::new(150.0));
        d.submit(vec![req]).unwrap();
        let snap = d.drain();
        assert!(snap.verify().passes());
    }
}
