//! Worker-count resolution shared by every thread pool in the workspace.
//!
//! Both the branch-and-bound frontier pool ([`crate::branch_bound`]) and
//! `dsp-core`'s sweep fan-out take a `threads` knob with the same contract:
//! an explicit count is used as-is, `0` means *auto* — the `DSP_THREADS`
//! environment variable when set to a positive integer, the machine's
//! available parallelism otherwise. The resolved count is clamped to the
//! number of independent work items and never drops to zero, so a pool can
//! always make progress. Centralizing the rule here keeps the env override
//! and the `threads == 0` guard from being re-implemented (and drifting)
//! per pool.

/// Environment variable overriding auto ( `threads == 0` ) resolution for
/// every pool in the workspace. Ignored unless it parses as a positive
/// integer.
pub const THREADS_ENV: &str = "DSP_THREADS";

/// Resolve a requested worker count against `cap` parallel work items.
///
/// * `requested >= 1` — taken literally (still clamped to `cap`).
/// * `requested == 0` — auto: [`THREADS_ENV`] when set and positive,
///   otherwise [`std::thread::available_parallelism`].
///
/// The result is always in `1..=max(cap, 1)`, so callers never spawn a
/// zero-worker pool even for degenerate inputs.
pub fn resolve_workers(requested: usize, cap: usize) -> usize {
    let env = std::env::var(THREADS_ENV).ok();
    resolve_from(requested, cap, env.as_deref(), hardware_threads())
}

/// Hardware threads the host can actually run at once (a best guess of 4
/// when the platform can't say). Pools use this both for auto resolution
/// and to decide whether waking a helper thread can possibly overlap with
/// the waker — on a single-core host it cannot, it only adds context
/// switches.
pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// Pure core of [`resolve_workers`], split out so the rule is testable
/// without mutating process-global environment state.
fn resolve_from(requested: usize, cap: usize, env: Option<&str>, hw: usize) -> usize {
    let auto = || env.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0).unwrap_or(hw);
    let req = if requested == 0 { auto() } else { requested };
    req.min(cap).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_count_wins_over_env() {
        assert_eq!(resolve_from(3, 100, Some("8"), 16), 3);
    }

    #[test]
    fn auto_prefers_env_then_hw() {
        assert_eq!(resolve_from(0, 100, Some("6"), 16), 6);
        assert_eq!(resolve_from(0, 100, None, 16), 16);
    }

    #[test]
    fn garbage_or_zero_env_falls_back_to_hw() {
        assert_eq!(resolve_from(0, 100, Some("none"), 8), 8);
        assert_eq!(resolve_from(0, 100, Some("0"), 8), 8);
        assert_eq!(resolve_from(0, 100, Some(" 5 "), 8), 5);
    }

    #[test]
    fn clamped_to_cap_and_at_least_one() {
        assert_eq!(resolve_from(64, 3, None, 16), 3);
        assert_eq!(resolve_from(0, 2, Some("8"), 16), 2);
        assert_eq!(resolve_from(0, 0, None, 16), 1);
        assert_eq!(resolve_from(5, 0, None, 16), 1);
    }
}
