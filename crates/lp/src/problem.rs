//! Problem builder: variables, bounds, linear constraints, objective.

use crate::error::LpError;

/// Handle to a variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional label for diagnostics.
    pub name: String,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Var {
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
    pub integer: bool,
    pub name: String,
}

/// A linear (or mixed-integer) program under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    pub(crate) vars: Vec<Var>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sense: Sense,
}

impl Problem {
    /// New empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem { vars: Vec::new(), constraints: Vec::new(), sense }
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`. Use `f64::INFINITY` for an unbounded upper and
    /// `f64::NEG_INFINITY` for an unbounded lower.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64, obj: f64) -> VarId {
        self.vars.push(Var { lower, upper, obj, integer: false, name: name.into() });
        VarId(self.vars.len() - 1)
    }

    /// Add an integer variable with bounds `[lower, upper]`.
    pub fn add_int_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> VarId {
        let v = self.add_var(name, lower, upper, obj);
        self.vars[v.0].integer = true;
        v
    }

    /// Add a binary (0/1) variable.
    pub fn add_bin_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_int_var(name, 0.0, 1.0, obj)
    }

    /// Add a constraint.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) {
        self.constraints.push(Constraint { terms, cmp, rhs, name: name.into() });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Indices of the integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars.iter().enumerate().filter(|(_, v)| v.integer).map(|(i, _)| VarId(i)).collect()
    }

    /// Mark an existing variable integral (test/property-test helper; the
    /// normal path is [`Problem::add_int_var`]).
    pub fn vars_make_integer_for_test(&mut self, i: usize) {
        self.vars[i].integer = true;
    }

    /// Validate the model: finite rhs/coefficients, bounds ordered, ids in
    /// range.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower > v.upper {
                return Err(LpError::Model(format!(
                    "variable {} ('{}') has lower {} > upper {}",
                    i, v.name, v.lower, v.upper
                )));
            }
            if v.obj.is_nan() {
                return Err(LpError::Model(format!("variable {} has NaN objective", i)));
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(LpError::Model(format!("constraint '{}' has non-finite rhs", c.name)));
            }
            for &(v, a) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(LpError::Model(format!(
                        "constraint '{}' references unknown variable {}",
                        c.name, v.0
                    )));
                }
                if !a.is_finite() {
                    return Err(LpError::Model(format!(
                        "constraint '{}' has non-finite coefficient",
                        c.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Check primal feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 10.0, 3.0);
        let y = p.add_bin_var("y", 1.0);
        p.add_constraint("c0", vec![(x, 1.0), (y, 2.0)], Cmp::Le, 8.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.integer_vars(), vec![y]);
        assert!(p.validate().is_ok());
        assert_eq!(p.objective_value(&[2.0, 1.0]), 7.0);
    }

    #[test]
    fn feasibility_checker() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 5.0, 1.0);
        p.add_constraint("c", vec![(x, 2.0)], Cmp::Ge, 4.0);
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(p.is_feasible(&[5.0], 1e-9));
        assert!(!p.is_feasible(&[1.0], 1e-9)); // violates c
        assert!(!p.is_feasible(&[6.0], 1e-9)); // violates bound
        assert!(!p.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn validation_catches_errors() {
        let mut p = Problem::new(Sense::Min);
        let _ = p.add_var("x", 3.0, 1.0, 0.0);
        assert!(matches!(p.validate(), Err(LpError::Model(_))));

        let mut p2 = Problem::new(Sense::Min);
        let x = p2.add_var("x", 0.0, 1.0, 0.0);
        p2.add_constraint("bad", vec![(x, f64::NAN)], Cmp::Le, 1.0);
        assert!(matches!(p2.validate(), Err(LpError::Model(_))));

        let mut p3 = Problem::new(Sense::Min);
        p3.add_constraint("ghost", vec![(VarId(9), 1.0)], Cmp::Le, 1.0);
        assert!(matches!(p3.validate(), Err(LpError::Model(_))));
    }
}
