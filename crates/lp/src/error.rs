//! Solver statuses and errors.

use std::fmt;

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// Branch-and-bound hit its node or time budget; the incumbent (if any)
    /// is feasible but not proven optimal.
    BudgetExhausted,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::BudgetExhausted => "budget exhausted",
        };
        f.write_str(s)
    }
}

/// Errors raised while building or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The model is malformed (bad variable id, inverted bounds, NaN
    /// coefficient …).
    Model(String),
    /// The LP is infeasible.
    Infeasible,
    /// The LP is unbounded.
    Unbounded,
    /// Branch-and-bound exhausted its budget without any incumbent.
    NoIncumbent,
    /// Simplex failed to converge within its iteration cap — numerically
    /// degenerate input.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Model(m) => write!(f, "model error: {m}"),
            LpError::Infeasible => f.write_str("infeasible"),
            LpError::Unbounded => f.write_str("unbounded"),
            LpError::NoIncumbent => f.write_str("budget exhausted with no incumbent"),
            LpError::IterationLimit => f.write_str("simplex iteration limit"),
        }
    }
}

impl std::error::Error for LpError {}
