//! A from-scratch linear-programming and mixed-integer-programming solver.
//!
//! The paper solves its Section III scheduling formulation with CPLEX \[31\].
//! CPLEX is proprietary, so this crate supplies the substitute: a dense
//! **two-phase primal simplex** ([`simplex`]) under a **branch-and-bound**
//! MILP driver ([`branch_bound`]), plus the paper's own fallback of
//! **relax-and-round** ([`round`]) for instances where exact search is too
//! expensive. The API is a small problem builder ([`problem::Problem`]);
//! nothing here knows about scheduling.
//!
//! Scale expectations: exact MILP is intended for the small instances the
//! paper's ILP actually admits (tens of binaries); everything larger goes
//! through LP relaxation + rounding or the list-scheduling heuristic in
//! `dsp-sched`, exactly as Section III prescribes ("we can first relax the
//! problem … then use integer rounding").

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod branch_bound;
pub mod error;
pub mod par;
pub mod problem;
pub mod round;
pub mod simplex;

pub use branch_bound::{solve_milp, MilpOptions, MilpSolution, WorkerCounters};
pub use error::{LpError, Status};
pub use par::{resolve_workers, THREADS_ENV};
pub use problem::{Cmp, Constraint, Problem, Sense, VarId};
pub use round::round_relaxation;
pub use simplex::{solve_lp, Solution};
