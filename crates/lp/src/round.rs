//! Relax-and-round, the paper's stated fallback for large instances.
//!
//! Section III: "we can first relax the problem to a real-number
//! optimization problem … and derive the solution … Then, we can use
//! integer rounding to get the solution for practical use."

use crate::error::LpError;
use crate::problem::Problem;
use crate::simplex::{solve_lp, Solution};

/// Solve the LP relaxation and round every integer-marked variable to the
/// nearest integer (clamped back into its bounds).
///
/// The rounded point is *not* guaranteed feasible for coupling constraints;
/// the returned flag reports whether it is, so callers can fall back to a
/// repair heuristic (in `dsp-sched` the list scheduler plays that role).
pub fn round_relaxation(p: &Problem) -> Result<(Solution, bool), LpError> {
    let relax = solve_lp(p)?;
    let mut x = relax.x.clone();
    for v in p.integer_vars() {
        let var = &p.vars[v.0];
        let r = x[v.0].round();
        x[v.0] = r.clamp(var.lower, var.upper);
    }
    let feasible = p.is_feasible(&x, 1e-6);
    let objective = p.objective_value(&x);
    Ok((Solution { x, objective, iterations: relax.iterations }, feasible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Sense};

    #[test]
    fn rounding_feasible_case() {
        // max x, 2x ≤ 7, x integer: relaxation 3.5 rounds to 4 — violates
        // the constraint, so feasible = false and callers must repair.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, 2.0)], Cmp::Le, 7.0);
        let (sol, feasible) = round_relaxation(&p).unwrap();
        assert_eq!(sol.x[0], 4.0);
        assert!(!feasible);
    }

    #[test]
    fn integral_relaxation_stays_feasible() {
        // Totally unimodular assignment LP: relaxation is already integral.
        let mut p = Problem::new(Sense::Min);
        let x00 = p.add_bin_var("x00", 1.0);
        let x01 = p.add_bin_var("x01", 5.0);
        p.add_constraint("r", vec![(x00, 1.0), (x01, 1.0)], Cmp::Eq, 1.0);
        let (sol, feasible) = round_relaxation(&p).unwrap();
        assert!(feasible);
        assert_eq!(sol.x, vec![1.0, 0.0]);
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn rounding_clamps_to_bounds() {
        // Relaxation at 0.5 with bounds [0, 0.5] must clamp to 0 after the
        // round-to-1 would exceed the upper bound... round(0.5)=1 → clamp
        // to 0.5 is not integral but respects bounds; the flag reports
        // infeasibility of integrality elsewhere. Here we just check no
        // bound violation.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, 0.5, 1.0);
        let _ = x;
        let (sol, _feasible) = round_relaxation(&p).unwrap();
        assert!(sol.x[0] <= 0.5 && sol.x[0] >= 0.0);
    }
}
