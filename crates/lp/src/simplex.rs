//! Dense two-phase primal simplex.
//!
//! Textbook tableau implementation with Bland's anti-cycling rule. Geared
//! for correctness and the modest instance sizes the DSP formulation
//! produces (hundreds of rows), not for sparse industrial LPs.

use crate::error::LpError;
use crate::problem::{Cmp, Problem, Sense};

const TOL: f64 = 1e-9;

/// An LP solution: the point, its objective value, and the iteration count.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal point in the original variable space.
    pub x: Vec<f64>,
    /// Objective value at `x`, in the problem's own sense.
    pub objective: f64,
    /// Simplex pivots performed (both phases).
    pub iterations: usize,
}

/// How each original variable maps into the non-negative standard-form
/// space.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = x'_col + shift`, `x' ≥ 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = ub − x'_col`, `x' ≥ 0` (lower unbounded, upper finite).
    Flipped { col: usize, ub: f64 },
    /// `x = x'_pos − x'_neg` (free variable).
    Split { pos: usize, neg: usize },
}

struct Standard {
    /// Rows of the constraint matrix over standard-form columns.
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Objective over standard-form columns (always *minimize*).
    cost: Vec<f64>,
    /// Constant folded out of the objective by the variable shifts.
    cost_offset: f64,
    /// Map from original variables to standard columns.
    map: Vec<VarMap>,
}

/// Convert a [`Problem`] to standard form `min c'x, Ax {≤,=,≥} b, x ≥ 0`
/// (slacks are added later by the tableau builder).
fn standardize(p: &Problem) -> Standard {
    let mut map = Vec::with_capacity(p.vars.len());
    let mut n = 0usize;
    // Extra rows for finite upper bounds of shifted vars.
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();
    for v in &p.vars {
        let lower_finite = v.lower.is_finite();
        let upper_finite = v.upper.is_finite();
        let m = if lower_finite {
            let col = n;
            n += 1;
            if upper_finite {
                ub_rows.push((col, v.upper - v.lower));
            }
            VarMap::Shifted { col, shift: v.lower }
        } else if upper_finite {
            let col = n;
            n += 1;
            VarMap::Flipped { col, ub: v.upper }
        } else {
            let pos = n;
            let neg = n + 1;
            n += 2;
            VarMap::Split { pos, neg }
        };
        map.push(m);
    }

    let sign = match p.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let mut cost = vec![0.0; n];
    let mut cost_offset = 0.0;
    for (v, m) in p.vars.iter().zip(&map) {
        let c = sign * v.obj;
        match *m {
            VarMap::Shifted { col, shift } => {
                cost[col] += c;
                cost_offset += c * shift;
            }
            VarMap::Flipped { col, ub } => {
                cost[col] -= c;
                cost_offset += c * ub;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
        }
    }

    let mut rows = Vec::new();
    let mut rhs = Vec::new();
    let mut cmps = Vec::new();
    for cons in &p.constraints {
        let mut row = vec![0.0; n];
        let mut b = cons.rhs;
        for &(vid, a) in &cons.terms {
            match map[vid.0] {
                VarMap::Shifted { col, shift } => {
                    row[col] += a;
                    b -= a * shift;
                }
                VarMap::Flipped { col, ub } => {
                    row[col] -= a;
                    b -= a * ub;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += a;
                    row[neg] -= a;
                }
            }
        }
        rows.push(row);
        rhs.push(b);
        cmps.push(cons.cmp);
    }
    for (col, ub) in ub_rows {
        let mut row = vec![0.0; n];
        row[col] = 1.0;
        rows.push(row);
        rhs.push(ub);
        cmps.push(Cmp::Le);
    }

    // Attach slack/surplus columns; normalize rhs ≥ 0 first (negating a row
    // flips its comparison).
    let m_rows = rows.len();
    let mut slack_cols = 0usize;
    for i in 0..m_rows {
        if rhs[i] < 0.0 {
            rhs[i] = -rhs[i];
            for a in rows[i].iter_mut() {
                *a = -*a;
            }
            cmps[i] = match cmps[i] {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        if !matches!(cmps[i], Cmp::Eq) {
            slack_cols += 1;
        }
    }
    let total = n + slack_cols;
    let mut next_slack = n;
    for i in 0..m_rows {
        rows[i].resize(total, 0.0);
        match cmps[i] {
            Cmp::Le => {
                rows[i][next_slack] = 1.0;
                next_slack += 1;
            }
            Cmp::Ge => {
                rows[i][next_slack] = -1.0;
                next_slack += 1;
            }
            Cmp::Eq => {}
        }
    }
    cost.resize(total, 0.0);

    Standard { rows, rhs, cost, cost_offset, map }
}

/// Full-tableau simplex state.
struct Tableau {
    /// `m × (n+1)` tableau; last column is the rhs.
    t: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `n+1`; last entry is
    /// `-objective`.
    z: Vec<f64>,
    basis: Vec<usize>,
    n: usize,
    iterations: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.t[row][col];
        debug_assert!(piv.abs() > TOL);
        let inv = 1.0 / piv;
        for a in self.t[row].iter_mut() {
            *a *= inv;
        }
        for r in 0..self.t.len() {
            if r != row {
                let factor = self.t[r][col];
                if factor.abs() > TOL {
                    for j in 0..=self.n {
                        let v = self.t[row][j];
                        self.t[r][j] -= factor * v;
                    }
                }
            }
        }
        let zf = self.z[col];
        if zf.abs() > TOL {
            for j in 0..=self.n {
                self.z[j] -= zf * self.t[row][j];
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Run simplex to optimality on the current objective row.
    /// `allowed` masks the columns eligible to enter.
    fn optimize(&mut self, allowed: &[bool], max_iters: usize) -> Result<(), LpError> {
        loop {
            if self.iterations > max_iters {
                return Err(LpError::IterationLimit);
            }
            // Bland's rule: smallest-index column with negative reduced
            // cost.
            let entering = (0..self.n).find(|&j| allowed[j] && self.z[j] < -TOL);
            let Some(col) = entering else { return Ok(()) };
            // Ratio test; Bland tie-break on the smallest basis variable.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.t.len() {
                let a = self.t[r][col];
                if a > TOL {
                    let ratio = self.t[r][self.n] / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - TOL
                                || ((ratio - bratio).abs() <= TOL && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                Some((row, _)) => self.pivot(row, col),
                None => return Err(LpError::Unbounded),
            }
        }
    }
}

/// Solve a linear program (integer markers are ignored — this is the pure
/// relaxation solver). Returns the optimal [`Solution`] or an error for
/// infeasible/unbounded models.
pub fn solve_lp(p: &Problem) -> Result<Solution, LpError> {
    p.validate()?;
    if p.num_vars() == 0 {
        // Feasible iff every constraint holds with all-empty lhs.
        for c in &p.constraints {
            let ok = match c.cmp {
                Cmp::Le => 0.0 <= c.rhs + TOL,
                Cmp::Ge => 0.0 >= c.rhs - TOL,
                Cmp::Eq => c.rhs.abs() <= TOL,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
        }
        return Ok(Solution { x: vec![], objective: 0.0, iterations: 0 });
    }

    let std_form = standardize(p);
    let m = std_form.rows.len();
    let n_cols = std_form.cost.len();
    let n_total = n_cols + m; // one artificial per row

    // Build the phase-1 tableau: [A | I | b].
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m);
    for (i, row) in std_form.rows.iter().enumerate() {
        let mut r = Vec::with_capacity(n_total + 1);
        r.extend_from_slice(row);
        for j in 0..m {
            r.push(if j == i { 1.0 } else { 0.0 });
        }
        r.push(std_form.rhs[i]);
        t.push(r);
    }
    let basis: Vec<usize> = (n_cols..n_total).collect();

    // Phase-1 objective: minimize the artificial sum. Reduced-cost row =
    // Σ (0·struct − row_i) for each artificial basic row.
    let mut z1 = vec![0.0; n_total + 1];
    for z in z1.iter_mut().take(n_total).skip(n_cols) {
        *z = 1.0;
    }
    for row in &t {
        for (z, r) in z1.iter_mut().zip(row.iter()) {
            *z -= r;
        }
    }
    // Artificial columns start basic with zero reduced cost.
    for z in z1.iter_mut().take(n_total).skip(n_cols) {
        *z = 0.0;
    }

    let mut tab = Tableau { t, z: z1, basis, n: n_total, iterations: 0 };
    let max_iters = 20_000 + 200 * (m + n_total);
    let allowed_all = vec![true; n_total];
    match tab.optimize(&allowed_all, max_iters) {
        Ok(()) => {}
        Err(LpError::Unbounded) => {
            // Phase 1 is bounded below by zero; unbounded here means a
            // numerical breakdown.
            return Err(LpError::IterationLimit);
        }
        Err(e) => return Err(e),
    }
    let phase1_obj = -tab.z[n_total];
    if phase1_obj > 1e-6 {
        return Err(LpError::Infeasible);
    }

    // Drive any artificial variables still in the basis out (degenerate
    // zero rows), pivoting on any structural column with a nonzero entry.
    for r in 0..m {
        if tab.basis[r] >= n_cols {
            if let Some(col) = (0..n_cols).find(|&j| tab.t[r][j].abs() > TOL) {
                tab.pivot(r, col);
            }
            // If no structural pivot exists the row is redundant; leaving
            // the zero-valued artificial basic is harmless.
        }
    }

    // Phase 2: original cost over structural columns only.
    let mut z2 = vec![0.0; n_total + 1];
    z2[..n_cols].copy_from_slice(&std_form.cost);
    for r in 0..m {
        let b = tab.basis[r];
        let cb = if b < n_cols { std_form.cost[b] } else { 0.0 };
        if cb.abs() > TOL {
            for (z, v) in z2.iter_mut().zip(tab.t[r].iter()) {
                *z -= cb * v;
            }
        }
    }
    // Basic columns must show zero reduced cost exactly.
    for r in 0..m {
        z2[tab.basis[r]] = 0.0;
    }
    tab.z = z2;

    let mut allowed = vec![true; n_total];
    for a in allowed.iter_mut().skip(n_cols) {
        *a = false; // artificials may never re-enter
    }
    tab.optimize(&allowed, max_iters)?;

    // Extract the standard-form point.
    let mut xs = vec![0.0; n_cols];
    for r in 0..m {
        if tab.basis[r] < n_cols {
            xs[tab.basis[r]] = tab.t[r][n_total];
        }
    }
    // Map back to the original variables.
    let mut x = vec![0.0; p.num_vars()];
    for (i, vm) in std_form.map.iter().enumerate() {
        x[i] = match *vm {
            VarMap::Shifted { col, shift } => xs[col] + shift,
            VarMap::Flipped { col, ub } => ub - xs[col],
            VarMap::Split { pos, neg } => xs[pos] - xs[neg],
        };
    }
    let min_obj = -tab.z[n_total] + std_form.cost_offset;
    let objective = match p.sense {
        Sense::Min => min_obj,
        Sense::Max => -min_obj,
    };
    Ok(Solution { x, objective, iterations: tab.iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint("c1", vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint("c2", vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn min_with_ge_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10−y chooses cheap x) …
        // optimum at y = 0, x = 10: z = 20? Check: coefficient of x is
        // smaller, so push everything onto x. x ≥ 2 non-binding.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        p.add_constraint("xmin", vec![(x, 1.0)], Cmp::Ge, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 10.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 8, x − y = 2 → x = 4, y = 2, z = 6.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("e1", vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 8.0);
        p.add_constraint("e2", vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.x[0], 4.0);
        assert_close(s.x[1], 2.0);
        assert_close(s.objective, 6.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(solve_lp(&p), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve_lp(&p), Err(LpError::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with 1 ≤ x ≤ 3, 0 ≤ y ≤ 2, x + y ≤ 4 → (3, 1) or (2,2);
        // objective 4 either way.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 1.0, 3.0, 1.0);
        let y = p.add_var("y", 0.0, 2.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 4.0);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn nonzero_lower_bounds_shift_objective() {
        // min x with x ≥ 5 (bound only, no constraint rows).
        let mut p = Problem::new(Sense::Min);
        let _x = p.add_var("x", 5.0, f64::INFINITY, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.x[0], 5.0);
    }

    #[test]
    fn free_variable_split() {
        // min |style| objective: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free →
        // optimum y = 0 at x = 3.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("a", vec![(y, 1.0), (x, -1.0)], Cmp::Ge, -3.0);
        p.add_constraint("b", vec![(y, 1.0), (x, 1.0)], Cmp::Ge, 3.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x with x ≤ 7 and lower unbounded → flipped var path.
        let mut p = Problem::new(Sense::Max);
        let _x = p.add_var("x", f64::NEG_INFINITY, 7.0, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints meeting at the optimum.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c2", vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c3", vec![(y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c4", vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic degenerate LP makes naive Dantzig pivoting cycle
        // forever; Bland's rule must terminate at the optimum z = −0.05.
        // min −0.75x4 + 150x5 − 0.02x6 + 6x7
        // s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
        //      0.5x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
        //      x6 ≤ 1
        let mut p = Problem::new(Sense::Min);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, -0.75);
        let x5 = p.add_var("x5", 0.0, f64::INFINITY, 150.0);
        let x6 = p.add_var("x6", 0.0, f64::INFINITY, -0.02);
        let x7 = p.add_var("x7", 0.0, f64::INFINITY, 6.0);
        p.add_constraint("r1", vec![(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)], Cmp::Le, 0.0);
        p.add_constraint("r2", vec![(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)], Cmp::Le, 0.0);
        p.add_constraint("r3", vec![(x6, 1.0)], Cmp::Le, 1.0);
        let s = solve_lp(&p).expect("Bland's rule terminates");
        assert_close(s.objective, -0.05);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Sense::Min);
        let s = solve_lp(&p).unwrap();
        assert!(s.x.is_empty());
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn solution_is_always_feasible() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        let y = p.add_var("y", 0.0, 10.0, 2.0);
        let z = p.add_var("z", 0.0, 10.0, 3.0);
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Ge, 6.0);
        p.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
        p.add_constraint("c3", vec![(z, 1.0)], Cmp::Ge, 1.0);
        let s = solve_lp(&p).unwrap();
        assert!(p.is_feasible(&s.x, 1e-6), "{:?}", s.x);
    }
}
