//! Dense two-phase primal simplex.
//!
//! Textbook tableau implementation with Bland's anti-cycling rule. Geared
//! for correctness and the modest instance sizes the DSP formulation
//! produces (hundreds of rows), not for sparse industrial LPs.

use crate::error::LpError;
use crate::problem::{Cmp, Problem, Sense};

const TOL: f64 = 1e-9;

/// An LP solution: the point, its objective value, and the iteration count.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal point in the original variable space.
    pub x: Vec<f64>,
    /// Objective value at `x`, in the problem's own sense.
    pub objective: f64,
    /// Simplex pivots performed (both phases).
    pub iterations: usize,
}

/// How each original variable maps into the non-negative standard-form
/// space.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = x'_col + shift`, `x' ≥ 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = ub − x'_col`, `x' ≥ 0` (lower unbounded, upper finite).
    Flipped { col: usize, ub: f64 },
    /// `x = x'_pos − x'_neg` (free variable).
    Split { pos: usize, neg: usize },
}

struct Standard {
    /// Sparse rows `(column, coefficient)` over standard-form columns,
    /// consolidated and sorted by column. The DSP formulation's
    /// disjunctive-ordering blocks touch a handful of columns per row, so
    /// dense rows would cost O(m·n) to build where O(nnz) suffices.
    rows: Vec<Vec<(usize, f64)>>,
    rhs: Vec<f64>,
    /// Objective over standard-form columns (always *minimize*).
    cost: Vec<f64>,
    /// Constant folded out of the objective by the variable shifts.
    cost_offset: f64,
    /// Map from original variables to standard columns.
    map: Vec<VarMap>,
}

/// Convert a [`Problem`] to standard form `min c'x, Ax {≤,=,≥} b, x ≥ 0`
/// (slacks are added later by the tableau builder).
fn standardize(p: &Problem) -> Standard {
    let mut map = Vec::with_capacity(p.vars.len());
    let mut n = 0usize;
    // Extra rows for finite upper bounds of shifted vars.
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();
    for v in &p.vars {
        let lower_finite = v.lower.is_finite();
        let upper_finite = v.upper.is_finite();
        let m = if lower_finite {
            let col = n;
            n += 1;
            if upper_finite {
                ub_rows.push((col, v.upper - v.lower));
            }
            VarMap::Shifted { col, shift: v.lower }
        } else if upper_finite {
            let col = n;
            n += 1;
            VarMap::Flipped { col, ub: v.upper }
        } else {
            let pos = n;
            let neg = n + 1;
            n += 2;
            VarMap::Split { pos, neg }
        };
        map.push(m);
    }

    let sign = match p.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let mut cost = vec![0.0; n];
    let mut cost_offset = 0.0;
    for (v, m) in p.vars.iter().zip(&map) {
        let c = sign * v.obj;
        match *m {
            VarMap::Shifted { col, shift } => {
                cost[col] += c;
                cost_offset += c * shift;
            }
            VarMap::Flipped { col, ub } => {
                cost[col] -= c;
                cost_offset += c * ub;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
        }
    }

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut rhs = Vec::new();
    let mut cmps = Vec::new();
    // Dense scratch reused across constraints: scatter the terms, then
    // gather the touched columns into a consolidated sorted sparse row.
    let mut scratch = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();
    for cons in &p.constraints {
        let mut b = cons.rhs;
        for &(vid, a) in &cons.terms {
            match map[vid.0] {
                VarMap::Shifted { col, shift } => {
                    scratch[col] += a;
                    touched.push(col);
                    b -= a * shift;
                }
                VarMap::Flipped { col, ub } => {
                    scratch[col] -= a;
                    touched.push(col);
                    b -= a * ub;
                }
                VarMap::Split { pos, neg } => {
                    scratch[pos] += a;
                    scratch[neg] -= a;
                    touched.push(pos);
                    touched.push(neg);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let row: Vec<(usize, f64)> =
            touched.iter().filter(|&&c| scratch[c] != 0.0).map(|&c| (c, scratch[c])).collect();
        for &c in &touched {
            scratch[c] = 0.0;
        }
        touched.clear();
        rows.push(row);
        rhs.push(b);
        cmps.push(cons.cmp);
    }
    for (col, ub) in ub_rows {
        rows.push(vec![(col, 1.0)]);
        rhs.push(ub);
        cmps.push(Cmp::Le);
    }

    // Attach slack/surplus columns; normalize rhs ≥ 0 first (negating a row
    // flips its comparison).
    let m_rows = rows.len();
    let mut slack_cols = 0usize;
    for i in 0..m_rows {
        if rhs[i] < 0.0 {
            rhs[i] = -rhs[i];
            for (_, a) in rows[i].iter_mut() {
                *a = -*a;
            }
            cmps[i] = match cmps[i] {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        if !matches!(cmps[i], Cmp::Eq) {
            slack_cols += 1;
        }
    }
    let total = n + slack_cols;
    let mut next_slack = n;
    for i in 0..m_rows {
        match cmps[i] {
            Cmp::Le => {
                rows[i].push((next_slack, 1.0));
                next_slack += 1;
            }
            Cmp::Ge => {
                rows[i].push((next_slack, -1.0));
                next_slack += 1;
            }
            Cmp::Eq => {}
        }
    }
    cost.resize(total, 0.0);

    Standard { rows, rhs, cost, cost_offset, map }
}

/// Full-tableau simplex state.
#[derive(Clone)]
struct Tableau {
    /// `m × (n+1)` tableau; last column is the rhs.
    t: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `n+1`; last entry is
    /// `-objective`.
    z: Vec<f64>,
    basis: Vec<usize>,
    n: usize,
    iterations: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.t[row][col];
        debug_assert!(piv.abs() > TOL);
        let inv = 1.0 / piv;
        for a in self.t[row].iter_mut() {
            *a *= inv;
        }
        for r in 0..self.t.len() {
            if r != row {
                let factor = self.t[r][col];
                if factor.abs() > TOL {
                    for j in 0..=self.n {
                        let v = self.t[row][j];
                        self.t[r][j] -= factor * v;
                    }
                }
            }
        }
        let zf = self.z[col];
        if zf.abs() > TOL {
            for j in 0..=self.n {
                self.z[j] -= zf * self.t[row][j];
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Run simplex to optimality on the current objective row.
    /// `allowed` masks the columns eligible to enter.
    fn optimize(&mut self, allowed: &[bool], max_iters: usize) -> Result<(), LpError> {
        loop {
            if self.iterations > max_iters {
                return Err(LpError::IterationLimit);
            }
            // Bland's rule: smallest-index column with negative reduced
            // cost.
            let entering = (0..self.n).find(|&j| allowed[j] && self.z[j] < -TOL);
            let Some(col) = entering else { return Ok(()) };
            // Ratio test; Bland tie-break on the smallest basis variable.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.t.len() {
                let a = self.t[r][col];
                if a > TOL {
                    let ratio = self.t[r][self.n] / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - TOL
                                || ((ratio - bratio).abs() <= TOL && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                Some((row, _)) => self.pivot(row, col),
                None => return Err(LpError::Unbounded),
            }
        }
    }

    /// Dual simplex: restore primal feasibility (rhs ≥ 0) while keeping the
    /// reduced costs non-negative. Entered after appending a violated
    /// constraint row to an optimal tableau (branch-and-bound warm starts).
    fn dual_optimize(&mut self, allowed: &[bool], max_iters: usize) -> Result<(), LpError> {
        loop {
            if self.iterations > max_iters {
                return Err(LpError::IterationLimit);
            }
            // Leaving row: most negative rhs (tie: smallest basis index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.t.len() {
                let b = self.t[r][self.n];
                if b < -TOL {
                    let better = match leave {
                        None => true,
                        Some((lr, lb)) => {
                            b < lb - TOL
                                || ((b - lb).abs() <= TOL && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, b));
                    }
                }
            }
            let Some((row, _)) = leave else { return Ok(()) };
            // Dual ratio test: minimize z[j]/−t[row][j] over the negative
            // entries; ties go to the smallest column index (Bland-style
            // anti-cycling).
            let mut enter: Option<(usize, f64)> = None;
            for (j, &open) in allowed.iter().enumerate().take(self.n) {
                if !open {
                    continue;
                }
                let a = self.t[row][j];
                if a < -TOL {
                    let ratio = self.z[j] / -a;
                    let better = match enter {
                        None => true,
                        Some((_, best)) => ratio < best - TOL,
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            match enter {
                Some((col, _)) => self.pivot(row, col),
                // No eligible entry: the row reads Σ(≥0)·x = negative.
                None => return Err(LpError::Infeasible),
            }
        }
    }
}

/// Solve a linear program (integer markers are ignored — this is the pure
/// relaxation solver). Returns the optimal [`Solution`] or an error for
/// infeasible/unbounded models.
pub fn solve_lp(p: &Problem) -> Result<Solution, LpError> {
    p.validate()?;
    if p.num_vars() == 0 {
        // Feasible iff every constraint holds with all-empty lhs.
        for c in &p.constraints {
            let ok = match c.cmp {
                Cmp::Le => 0.0 <= c.rhs + TOL,
                Cmp::Ge => 0.0 >= c.rhs - TOL,
                Cmp::Eq => c.rhs.abs() <= TOL,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
        }
        return Ok(Solution { x: vec![], objective: 0.0, iterations: 0 });
    }

    let s = solve_std(p)?;
    Ok(extract(&s))
}

/// A solved (optimal) standard-form tableau plus the mapping data needed to
/// extract a [`Solution`] or to warm-start a child solve from it.
#[derive(Clone)]
struct SolvedLp {
    tab: Tableau,
    /// Columns eligible to enter the basis (artificials masked off).
    allowed: Vec<bool>,
    /// Standard-form column count (structural + standardize slacks) —
    /// only these columns map back to original variables.
    n_base: usize,
    map: Vec<VarMap>,
    cost_offset: f64,
    sense: Sense,
    num_vars: usize,
}

/// Run two-phase simplex to optimality and return the solved tableau.
fn solve_std(p: &Problem) -> Result<SolvedLp, LpError> {
    let std_form = standardize(p);
    let m = std_form.rows.len();
    let n_cols = std_form.cost.len();
    let n_total = n_cols + m; // one artificial per row

    // Build the phase-1 tableau: [A | I | b].
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m);
    for (i, row) in std_form.rows.iter().enumerate() {
        let mut r = vec![0.0; n_total + 1];
        for &(c, a) in row {
            r[c] = a;
        }
        r[n_cols + i] = 1.0;
        r[n_total] = std_form.rhs[i];
        t.push(r);
    }
    let basis: Vec<usize> = (n_cols..n_total).collect();

    // Phase-1 objective: minimize the artificial sum. Reduced-cost row =
    // Σ (0·struct − row_i) for each artificial basic row.
    let mut z1 = vec![0.0; n_total + 1];
    for z in z1.iter_mut().take(n_total).skip(n_cols) {
        *z = 1.0;
    }
    for row in &t {
        for (z, r) in z1.iter_mut().zip(row.iter()) {
            *z -= r;
        }
    }
    // Artificial columns start basic with zero reduced cost.
    for z in z1.iter_mut().take(n_total).skip(n_cols) {
        *z = 0.0;
    }

    let mut tab = Tableau { t, z: z1, basis, n: n_total, iterations: 0 };
    let max_iters = 20_000 + 200 * (m + n_total);
    let allowed_all = vec![true; n_total];
    match tab.optimize(&allowed_all, max_iters) {
        Ok(()) => {}
        Err(LpError::Unbounded) => {
            // Phase 1 is bounded below by zero; unbounded here means a
            // numerical breakdown.
            return Err(LpError::IterationLimit);
        }
        Err(e) => return Err(e),
    }
    let phase1_obj = -tab.z[n_total];
    if phase1_obj > 1e-6 {
        return Err(LpError::Infeasible);
    }

    // Drive any artificial variables still in the basis out (degenerate
    // zero rows), pivoting on any structural column with a nonzero entry.
    for r in 0..m {
        if tab.basis[r] >= n_cols {
            if let Some(col) = (0..n_cols).find(|&j| tab.t[r][j].abs() > TOL) {
                tab.pivot(r, col);
            }
            // If no structural pivot exists the row is redundant; leaving
            // the zero-valued artificial basic is harmless.
        }
    }

    // Phase 2: original cost over structural columns only.
    let mut z2 = vec![0.0; n_total + 1];
    z2[..n_cols].copy_from_slice(&std_form.cost);
    for r in 0..m {
        let b = tab.basis[r];
        let cb = if b < n_cols { std_form.cost[b] } else { 0.0 };
        if cb.abs() > TOL {
            for (z, v) in z2.iter_mut().zip(tab.t[r].iter()) {
                *z -= cb * v;
            }
        }
    }
    // Basic columns must show zero reduced cost exactly.
    for r in 0..m {
        z2[tab.basis[r]] = 0.0;
    }
    tab.z = z2;

    let mut allowed = vec![true; n_total];
    for a in allowed.iter_mut().skip(n_cols) {
        *a = false; // artificials may never re-enter
    }
    tab.optimize(&allowed, max_iters)?;

    Ok(SolvedLp {
        tab,
        allowed,
        n_base: n_cols,
        map: std_form.map,
        cost_offset: std_form.cost_offset,
        sense: p.sense,
        num_vars: p.num_vars(),
    })
}

/// Read the optimal point and objective out of a solved tableau.
fn extract(s: &SolvedLp) -> Solution {
    let tab = &s.tab;
    // Extract the standard-form point.
    let mut xs = vec![0.0; s.n_base];
    for r in 0..tab.t.len() {
        if tab.basis[r] < s.n_base {
            xs[tab.basis[r]] = tab.t[r][tab.n];
        }
    }
    // Map back to the original variables.
    let mut x = vec![0.0; s.num_vars];
    for (i, vm) in s.map.iter().enumerate() {
        x[i] = match *vm {
            VarMap::Shifted { col, shift } => xs[col] + shift,
            VarMap::Flipped { col, ub } => ub - xs[col],
            VarMap::Split { pos, neg } => xs[pos] - xs[neg],
        };
    }
    let min_obj = -tab.z[tab.n] + s.cost_offset;
    let objective = match s.sense {
        Sense::Min => min_obj,
        Sense::Max => -min_obj,
    };
    Solution { x, objective, iterations: tab.iterations }
}

/// Solve an LP and additionally hand back the re-entrant [`WarmLp`] state,
/// so branch-and-bound can derive child nodes from the optimal basis.
pub(crate) fn solve_lp_warm(p: &Problem) -> Result<(Solution, WarmLp), LpError> {
    p.validate()?;
    let inner = solve_std(p)?;
    let sol = extract(&inner);
    Ok((sol, WarmLp { inner }))
}

/// Re-entrant solver state for branch-and-bound warm starts: the optimal
/// tableau of a parent node, from which a child node (one extra branching
/// bound) is re-solved by dual simplex instead of from scratch.
#[derive(Clone)]
pub(crate) struct WarmLp {
    inner: SolvedLp,
}

impl WarmLp {
    /// Pivots performed on this tableau since the last (re-)solve began.
    pub(crate) fn iterations(&self) -> usize {
        self.inner.tab.iterations
    }

    /// Derive a child state: clone this optimal tableau and append the
    /// branch constraint `x_v ≤ bound` (`le`) or `x_v ≥ bound` over the
    /// *original* variable `v`. The new row gets its own slack column which
    /// enters the basis, keeping the tableau dual feasible; call
    /// [`WarmLp::resolve`] to restore primal feasibility.
    pub(crate) fn child(&self, v: usize, le: bool, bound: f64) -> WarmLp {
        let src = &self.inner;
        let n_old = src.tab.n;
        let new_col = n_old;
        // Widen every row by the new slack column (kept just before rhs).
        let mut t: Vec<Vec<f64>> = Vec::with_capacity(src.tab.t.len() + 1);
        for row in &src.tab.t {
            let mut r = Vec::with_capacity(n_old + 2);
            r.extend_from_slice(&row[..n_old]);
            r.push(0.0);
            r.push(row[n_old]);
            t.push(r);
        }
        let mut z = Vec::with_capacity(n_old + 2);
        z.extend_from_slice(&src.tab.z[..n_old]);
        z.push(0.0);
        z.push(src.tab.z[n_old]);

        // The branch bound over standard-form columns, normalized to ≤.
        let mut terms: [(usize, f64); 2] = [(0, 0.0); 2];
        let mut n_terms = 1;
        let mut b;
        let mut le = le;
        match src.map[v] {
            VarMap::Shifted { col, shift } => {
                terms[0] = (col, 1.0);
                b = bound - shift;
            }
            VarMap::Flipped { col, ub } => {
                // x = ub − x' {≤,≥} bound  ⇔  x' {≥,≤} ub − bound.
                terms[0] = (col, 1.0);
                b = ub - bound;
                le = !le;
            }
            VarMap::Split { pos, neg } => {
                terms[0] = (pos, 1.0);
                terms[1] = (neg, -1.0);
                n_terms = 2;
                b = bound;
            }
        }
        if !le {
            for (_, a) in terms.iter_mut() {
                *a = -*a;
            }
            b = -b;
        }
        let mut row = vec![0.0; n_old + 2];
        for &(c, a) in &terms[..n_terms] {
            row[c] = a;
        }
        row[new_col] = 1.0;
        row[n_old + 1] = b;
        // Express the new row in the current basis: eliminate every basic
        // column against the row where it is basic. (Old rows are zero in
        // the new slack column, so its coefficient survives untouched.)
        for (r, &basic) in t.iter().zip(&src.tab.basis) {
            let f = row[basic];
            if f.abs() > TOL {
                for (dst, srcv) in row.iter_mut().zip(r.iter()) {
                    *dst -= f * srcv;
                }
            }
        }
        t.push(row);
        let mut basis = src.tab.basis.clone();
        basis.push(new_col);
        let mut allowed = src.allowed.clone();
        allowed.push(true);
        let tab = Tableau { t, z, basis, n: n_old + 1, iterations: 0 };
        WarmLp {
            inner: SolvedLp {
                tab,
                allowed,
                n_base: src.n_base,
                map: src.map.clone(),
                cost_offset: src.cost_offset,
                sense: src.sense,
                num_vars: src.num_vars,
            },
        }
    }

    /// Re-solve after [`WarmLp::child`] appended a branch row: dual simplex
    /// drives the violated rhs out, then a primal cleanup pass clears any
    /// residual negative reduced cost. `Infeasible` is definitive; any
    /// other error means "fall back to a cold solve". `pivot_cap` lowers
    /// the iteration budget below the solver's own limit — branch-and-bound
    /// threads its `warm_pivot_cap` fault-injection knob through here so
    /// tests can force the cold-solve fallback deterministically.
    pub(crate) fn resolve(&mut self, pivot_cap: Option<usize>) -> Result<Solution, LpError> {
        let tab = &mut self.inner.tab;
        tab.iterations = 0;
        let auto = 20_000 + 200 * (tab.t.len() + tab.n);
        let max_iters = pivot_cap.map_or(auto, |cap| cap.min(auto));
        tab.dual_optimize(&self.inner.allowed, max_iters)?;
        tab.optimize(&self.inner.allowed, max_iters).map_err(|e| match e {
            // A child of a bounded parent cannot be unbounded; treat it as
            // a numerical breakdown so the caller cold-solves.
            LpError::Unbounded => LpError::IterationLimit,
            e => e,
        })?;
        Ok(extract(&self.inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint("c1", vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint("c2", vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn min_with_ge_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10−y chooses cheap x) …
        // optimum at y = 0, x = 10: z = 20? Check: coefficient of x is
        // smaller, so push everything onto x. x ≥ 2 non-binding.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        p.add_constraint("xmin", vec![(x, 1.0)], Cmp::Ge, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 10.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 8, x − y = 2 → x = 4, y = 2, z = 6.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("e1", vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 8.0);
        p.add_constraint("e2", vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.x[0], 4.0);
        assert_close(s.x[1], 2.0);
        assert_close(s.objective, 6.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(solve_lp(&p), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve_lp(&p), Err(LpError::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with 1 ≤ x ≤ 3, 0 ≤ y ≤ 2, x + y ≤ 4 → (3, 1) or (2,2);
        // objective 4 either way.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 1.0, 3.0, 1.0);
        let y = p.add_var("y", 0.0, 2.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 4.0);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn nonzero_lower_bounds_shift_objective() {
        // min x with x ≥ 5 (bound only, no constraint rows).
        let mut p = Problem::new(Sense::Min);
        let _x = p.add_var("x", 5.0, f64::INFINITY, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.x[0], 5.0);
    }

    #[test]
    fn free_variable_split() {
        // min |style| objective: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free →
        // optimum y = 0 at x = 3.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("a", vec![(y, 1.0), (x, -1.0)], Cmp::Ge, -3.0);
        p.add_constraint("b", vec![(y, 1.0), (x, 1.0)], Cmp::Ge, 3.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x with x ≤ 7 and lower unbounded → flipped var path.
        let mut p = Problem::new(Sense::Max);
        let _x = p.add_var("x", f64::NEG_INFINITY, 7.0, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints meeting at the optimum.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c2", vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c3", vec![(y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint("c4", vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic degenerate LP makes naive Dantzig pivoting cycle
        // forever; Bland's rule must terminate at the optimum z = −0.05.
        // min −0.75x4 + 150x5 − 0.02x6 + 6x7
        // s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
        //      0.5x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
        //      x6 ≤ 1
        let mut p = Problem::new(Sense::Min);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, -0.75);
        let x5 = p.add_var("x5", 0.0, f64::INFINITY, 150.0);
        let x6 = p.add_var("x6", 0.0, f64::INFINITY, -0.02);
        let x7 = p.add_var("x7", 0.0, f64::INFINITY, 6.0);
        p.add_constraint("r1", vec![(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)], Cmp::Le, 0.0);
        p.add_constraint("r2", vec![(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)], Cmp::Le, 0.0);
        p.add_constraint("r3", vec![(x6, 1.0)], Cmp::Le, 1.0);
        let s = solve_lp(&p).expect("Bland's rule terminates");
        assert_close(s.objective, -0.05);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Sense::Min);
        let s = solve_lp(&p).unwrap();
        assert!(s.x.is_empty());
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn solution_is_always_feasible() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        let y = p.add_var("y", 0.0, 10.0, 2.0);
        let z = p.add_var("z", 0.0, 10.0, 3.0);
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Ge, 6.0);
        p.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
        p.add_constraint("c3", vec![(z, 1.0)], Cmp::Ge, 1.0);
        let s = solve_lp(&p).unwrap();
        assert!(p.is_feasible(&s.x, 1e-6), "{:?}", s.x);
    }
}
