//! Branch-and-bound MILP driver over the simplex relaxation solver.

use crate::error::{LpError, Status};
use crate::problem::{Problem, Sense};
use crate::simplex::{solve_lp, solve_lp_warm, Solution, WarmLp};

/// Integrality tolerance: values this close to an integer count as integral.
const INT_TOL: f64 = 1e-6;

/// Search budget for [`solve_milp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilpOptions {
    /// Maximum number of branch-and-bound nodes (LP solves).
    pub max_nodes: usize,
    /// Stop once the incumbent is within this absolute gap of the best
    /// bound.
    pub abs_gap: f64,
    /// Warm-start each child node from its parent's optimal basis by dual
    /// simplex instead of cold-solving from scratch. Falls back to a cold
    /// solve per node on numerical trouble, so results are identical either
    /// way; disable only for baseline measurements.
    pub warm_start: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions { max_nodes: 10_000, abs_gap: 1e-6, warm_start: true }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// The incumbent point (integral on all integer variables).
    pub x: Vec<f64>,
    /// Objective at the incumbent, in the problem's sense.
    pub objective: f64,
    /// Terminal status: [`Status::Optimal`] when proven, otherwise
    /// [`Status::BudgetExhausted`].
    pub status: Status,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots across all node LP solves (both phases, dual
    /// re-entries included).
    pub pivots: usize,
    /// Nodes answered by a warm dual-simplex re-entry (0 when
    /// [`MilpOptions::warm_start`] is off).
    pub warm_hits: usize,
}

/// Is `v` integral within tolerance?
fn is_int(v: f64) -> bool {
    (v - v.round()).abs() <= INT_TOL
}

/// Solve a mixed-integer linear program by LP-based branch-and-bound with
/// most-fractional branching and depth-first search.
///
/// Returns [`LpError::Infeasible`]/[`LpError::Unbounded`] when the root
/// relaxation already proves it, and [`LpError::NoIncumbent`] when the node
/// budget runs out before any integral point is found.
pub fn solve_milp(p: &Problem, opts: MilpOptions) -> Result<MilpSolution, LpError> {
    p.validate()?;
    let int_vars = p.integer_vars();
    // Pure LP: one relaxation solve is the answer.
    if int_vars.is_empty() {
        let s = solve_lp(p)?;
        return Ok(MilpSolution {
            objective: s.objective,
            pivots: s.iterations,
            x: s.x,
            status: Status::Optimal,
            nodes: 1,
            warm_hits: 0,
        });
    }

    // Internally treat everything as minimization of the sense-adjusted
    // objective so bound comparisons read one way.
    let to_min = |obj: f64| match p.sense {
        Sense::Min => obj,
        Sense::Max => -obj,
    };

    struct NodeState {
        problem: Problem,
        depth: usize,
        /// Parent's optimal tableau with this node's branch row already
        /// appended, ready for dual-simplex re-entry (`None` → cold solve).
        warm: Option<WarmLp>,
    }

    let mut stack = vec![NodeState { problem: p.clone(), depth: 0, warm: None }];
    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (x, min-objective)
    let mut nodes = 0usize;
    let mut pivots = 0usize;
    let mut warm_hits = 0usize;
    let mut exhausted = false;

    while let Some(mut node) = stack.pop() {
        if nodes >= opts.max_nodes {
            exhausted = true;
            break;
        }
        nodes += 1;
        // Warm path: dual-simplex re-entry from the parent basis. Anything
        // suspect — iteration trouble, or a point that fails verification
        // against the node's own bounds — falls back to a cold solve below;
        // `Infeasible` is a sound verdict and prunes the node directly.
        let mut warm_solved: Option<(Solution, WarmLp)> = None;
        let mut warm_pruned = false;
        if let Some(mut w) = node.warm.take() {
            match w.resolve() {
                Ok(s) => {
                    pivots += s.iterations;
                    if node.problem.is_feasible(&s.x, 1e-6) {
                        warm_hits += 1;
                        warm_solved = Some((s, w));
                    }
                }
                Err(e) => {
                    pivots += w.iterations();
                    warm_pruned = matches!(e, LpError::Infeasible);
                }
            }
        }
        if warm_pruned {
            continue;
        }
        let (relax, warm_state) = match warm_solved {
            Some((s, w)) => (s, Some(w)),
            None => {
                let cold = if opts.warm_start {
                    solve_lp_warm(&node.problem).map(|(s, w)| (s, Some(w)))
                } else {
                    solve_lp(&node.problem).map(|s| (s, None))
                };
                match cold {
                    Ok((s, w)) => {
                        pivots += s.iterations;
                        (s, w)
                    }
                    Err(LpError::Infeasible) => continue,
                    Err(LpError::Unbounded) => {
                        // Unbounded relaxation at the root means the MILP
                        // itself is unbounded (or has unbounded relaxation —
                        // we surface it).
                        if node.depth == 0 {
                            return Err(LpError::Unbounded);
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        let bound = to_min(relax.objective);
        if let Some((_, inc)) = &incumbent {
            if bound >= *inc - opts.abs_gap {
                continue; // pruned by bound
            }
        }
        // Most fractional integer variable.
        let branch_var =
            int_vars.iter().copied().filter(|v| !is_int(relax.x[v.0])).max_by(|a, b| {
                let fa = (relax.x[a.0] - relax.x[a.0].round()).abs();
                let fb = (relax.x[b.0] - relax.x[b.0].round()).abs();
                fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
            });
        match branch_var {
            None => {
                // Integral point: candidate incumbent.
                let better = incumbent.as_ref().is_none_or(|(_, inc)| bound < *inc - opts.abs_gap);
                if better {
                    // Snap integer coordinates exactly.
                    let mut x = relax.x.clone();
                    for v in &int_vars {
                        x[v.0] = x[v.0].round();
                    }
                    incumbent = Some((x, bound));
                }
            }
            Some(v) => {
                let val = relax.x[v.0];
                // Down branch: x ≤ floor(val); up branch: x ≥ ceil(val).
                // Push the up branch first so the down branch (often the
                // cheaper schedule) explores first (LIFO).
                let mut up = node.problem.clone();
                up.restrict_bounds(v, val.ceil(), f64::INFINITY);
                if !up.has_empty_bounds(v) {
                    let warm = warm_state.as_ref().map(|w| w.child(v.0, false, val.ceil()));
                    stack.push(NodeState { problem: up, depth: node.depth + 1, warm });
                }
                let mut down = node.problem.clone();
                down.restrict_bounds(v, f64::NEG_INFINITY, val.floor());
                if !down.has_empty_bounds(v) {
                    let warm = warm_state.as_ref().map(|w| w.child(v.0, true, val.floor()));
                    stack.push(NodeState { problem: down, depth: node.depth + 1, warm });
                }
            }
        }
    }

    match incumbent {
        Some((x, min_obj)) => {
            let objective = match p.sense {
                Sense::Min => min_obj,
                Sense::Max => -min_obj,
            };
            let status = if exhausted { Status::BudgetExhausted } else { Status::Optimal };
            Ok(MilpSolution { x, objective, status, nodes, pivots, warm_hits })
        }
        None if exhausted => Err(LpError::NoIncumbent),
        None => Err(LpError::Infeasible),
    }
}

/// Convenience: solve and return only the point and objective, erroring on
/// budget exhaustion without incumbent.
pub fn solve_milp_simple(p: &Problem) -> Result<Solution, LpError> {
    let s = solve_milp(p, MilpOptions::default())?;
    Ok(Solution { x: s.x, objective: s.objective, iterations: s.nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 5a + 4b + 3c, 2a + 3b + c ≤ 5, binaries → a=1, c=1 … check:
        // a+c uses 3, add b? 2+3+1=6 > 5. Best is a=1,c=1 (8) vs a=1,b=1
        // (9, weight 5 ✓). Optimum 9.
        let mut p = Problem::new(Sense::Max);
        let a = p.add_bin_var("a", 5.0);
        let b = p.add_bin_var("b", 4.0);
        let c = p.add_bin_var("c", 3.0);
        p.add_constraint("w", vec![(a, 2.0), (b, 3.0), (c, 1.0)], Cmp::Le, 5.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 9.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.x[2], 0.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x ≤ 7, x integer → 3 (relaxation gives 3.5).
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, 2.0)], Cmp::Le, 7.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer ≤ 2.5 constraint, y ≤ 1.7 continuous.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, f64::INFINITY, 2.0);
        let _y = p.add_var("y", 0.0, 1.7, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], Cmp::Le, 2.5);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.0 * 2.0 + 1.7);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6, x integer: LP feasible, MILP infeasible.
        let mut p = Problem::new(Sense::Min);
        let _x = p.add_int_var("x", 0.4, 0.6, 1.0);
        assert_eq!(solve_milp(&p, MilpOptions::default()), Err(LpError::Infeasible));
    }

    #[test]
    fn equality_milp() {
        // min x + y s.t. x + y = 5, both integers in [0,5]: objective 5,
        // many optima — check feasibility and integrality instead of point.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 5.0, 1.0);
        let y = p.add_int_var("y", 0.0, 5.0, 1.0);
        p.add_constraint("e", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 5.0);
        assert!(is_int(s.x[0]) && is_int(s.x[1]));
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn budget_exhaustion_reports_status() {
        // A 10-item knapsack with a 1-node budget cannot finish.
        let mut p = Problem::new(Sense::Max);
        let vars: Vec<_> =
            (0..10).map(|i| p.add_bin_var(format!("v{i}"), (i + 1) as f64)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        p.add_constraint("w", terms, Cmp::Le, 9.0);
        match solve_milp(&p, MilpOptions { max_nodes: 1, ..MilpOptions::default() }) {
            Err(LpError::NoIncumbent) => {}
            Ok(s) => assert_eq!(s.status, Status::BudgetExhausted),
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn assignment_problem_integral() {
        // 2×2 assignment: min cost matrix [[1, 10], [10, 1]]; x_ij binary,
        // each row/col sums to 1 → diagonal, cost 2.
        let mut p = Problem::new(Sense::Min);
        let x00 = p.add_bin_var("x00", 1.0);
        let x01 = p.add_bin_var("x01", 10.0);
        let x10 = p.add_bin_var("x10", 10.0);
        let x11 = p.add_bin_var("x11", 1.0);
        p.add_constraint("r0", vec![(x00, 1.0), (x01, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("r1", vec![(x10, 1.0), (x11, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("c0", vec![(x00, 1.0), (x10, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("c1", vec![(x01, 1.0), (x11, 1.0)], Cmp::Eq, 1.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[3], 1.0);
    }

    #[test]
    fn warm_start_matches_cold_on_knapsack() {
        // The same MILP solved warm and cold must agree on objective and
        // status; warm should actually use the dual re-entry path.
        let mut p = Problem::new(Sense::Max);
        let vars: Vec<_> =
            (0..8).map(|i| p.add_bin_var(format!("v{i}"), ((i * 7) % 5 + 1) as f64)).collect();
        let terms: Vec<_> =
            vars.iter().enumerate().map(|(i, &v)| (v, ((i % 3) + 1) as f64)).collect();
        p.add_constraint("w", terms, Cmp::Le, 7.0);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(cold.status, Status::Optimal);
        assert_close(warm.objective, cold.objective);
        assert!(p.is_feasible(&warm.x, 1e-6));
        assert!(warm.warm_hits > 0, "dual re-entry never fired");
        assert_eq!(cold.warm_hits, 0);
    }

    #[test]
    fn warm_start_matches_cold_on_mixed_equality() {
        // Equality rows + continuous vars exercise artificials and the
        // Shifted/ub-row mapping under warm re-entry.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 6.0, 1.0);
        let y = p.add_int_var("y", 0.0, 6.0, 2.0);
        let z = p.add_var("z", 0.0, 3.5, 0.5);
        p.add_constraint("e", vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 7.5);
        p.add_constraint("g", vec![(y, 1.0), (z, -1.0)], Cmp::Ge, 0.5);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(p.is_feasible(&warm.x, 1e-6));
        assert!(is_int(warm.x[0]) && is_int(warm.x[1]));
    }

    #[test]
    fn warm_start_agrees_infeasible() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 10.0, 1.0);
        let y = p.add_int_var("y", 0.0, 10.0, 1.0);
        // 2x + 2y = 7 has no integral solution.
        p.add_constraint("e", vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 7.0);
        assert_eq!(solve_milp(&p, MilpOptions::default()), Err(LpError::Infeasible));
        assert_eq!(
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }),
            Err(LpError::Infeasible)
        );
    }

    #[test]
    fn pure_lp_shortcut() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 2.5, 1.0);
        let _ = x;
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.5);
        assert_eq!(s.nodes, 1);
    }
}
