//! Branch-and-bound MILP driver over the simplex relaxation solver.
//!
//! The frontier is explored **best-bound first** in synchronous batched
//! rounds so node exploration can fan out over a worker pool while staying
//! *bit-for-bit deterministic*: the returned point, proven objective, and
//! every effort counter except the per-worker split are independent of the
//! thread count and of OS scheduling. The reduction rule that buys this:
//!
//! * **Pop order** — the shared priority queue orders by (LP bound,
//!   node seniority): best bound first, ties to the smaller (older) node
//!   id. A round pops a fixed-size batch in that order, independent of how
//!   many workers will chew on it.
//! * **Frozen incumbent** — workers prune against a shared atomic
//!   incumbent objective that is only written *between* rounds, so every
//!   node's prune decision depends on the round number alone, never on
//!   which worker ran it or when.
//! * **Commutative incumbent replacement** — an integral point replaces
//!   the incumbent iff its objective is strictly better, ties broken by
//!   the senior node id. That is a lattice min over (objective, id):
//!   associative and commutative, so the final incumbent is the same in
//!   any merge order (we additionally merge in deterministic batch order,
//!   belt and braces).
//!
//! Each node carries its own warm-start tableau ([`WarmLp`]) and a
//! per-variable bound overlay instead of a cloned [`Problem`] — branching
//! only ever tightens variable bounds, so the root problem's constraint
//! rows are shared read-only across all workers and a full problem clone
//! is materialized only on the (rare) cold-solve fallback path.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

use crate::error::{LpError, Status};
use crate::problem::{Problem, Sense, VarId};
use crate::simplex::{solve_lp, solve_lp_warm, Solution, WarmLp};

/// Integrality tolerance: values this close to an integer count as integral.
const INT_TOL: f64 = 1e-6;

/// Nodes popped per synchronous frontier round. Fixed (never derived from
/// the worker count) so the explored tree is identical at every thread
/// count; it is also the cap on useful workers. 8 balances speculation
/// (nodes popped before this round's incumbent improvements can prune
/// them — on the pinned fig5 bench set, batches past 8 start exploring
/// nodes a fresher incumbent would have pruned) against round frequency.
const FRONTIER_BATCH: usize = 8;

/// Search budget and execution knobs for [`solve_milp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilpOptions {
    /// Maximum number of branch-and-bound nodes (LP solves).
    pub max_nodes: usize,
    /// Stop once the incumbent is within this absolute gap of the best
    /// bound.
    pub abs_gap: f64,
    /// Warm-start each child node from its parent's optimal basis by dual
    /// simplex instead of cold-solving from scratch. Falls back to a cold
    /// solve per node on numerical trouble, so results are identical either
    /// way; disable only for baseline measurements.
    pub warm_start: bool,
    /// Worker threads exploring the frontier. `0` = auto (the
    /// `DSP_THREADS` env var when set, else available parallelism — see
    /// [`crate::par::resolve_workers`]); `1` runs in-line without spawning.
    /// Every value returns bit-identical results; this knob only trades
    /// wall time.
    pub threads: usize,
    /// Fault-injection cap on dual-simplex pivots per warm re-entry
    /// (`None` = the solver's own generous limit). A re-entry that exceeds
    /// the cap fails over to the cold-solve path, letting tests force and
    /// observe the fallback deterministically.
    pub warm_pivot_cap: Option<usize>,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 10_000,
            abs_gap: 1e-6,
            warm_start: true,
            threads: 0,
            warm_pivot_cap: None,
        }
    }
}

/// Per-worker effort split for one [`solve_milp`] call.
///
/// Which worker happened to grab which frontier node **is**
/// scheduling-dependent, so these counters are observability only — they
/// are deliberately excluded from the determinism contract that covers
/// every other field of [`MilpSolution`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Frontier nodes this worker expanded.
    pub nodes: u64,
    /// Nodes a *spawned* worker pulled off the shared round cursor. The
    /// coordinator thread (worker 0) grabs greedily and owns whatever the
    /// pool doesn't take, so every node a pool thread wins is a steal; a
    /// non-zero total is proof the pool actually ran concurrently.
    pub steals: u64,
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// The incumbent point (integral on all integer variables).
    pub x: Vec<f64>,
    /// Objective at the incumbent, in the problem's sense.
    pub objective: f64,
    /// Terminal status: [`Status::Optimal`] when proven, otherwise
    /// [`Status::BudgetExhausted`].
    pub status: Status,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots across all node LP solves (both phases, dual
    /// re-entries included).
    pub pivots: usize,
    /// Nodes answered by a warm dual-simplex re-entry (0 when
    /// [`MilpOptions::warm_start`] is off).
    pub warm_hits: usize,
    /// Synchronous frontier rounds taken (deterministic, like `nodes`).
    pub rounds: usize,
    /// Per-worker node/steal split — scheduling-dependent observability,
    /// see [`WorkerCounters`]. Empty for the pure-LP shortcut.
    pub per_worker: Vec<WorkerCounters>,
}

/// Is `v` integral within tolerance?
fn is_int(v: f64) -> bool {
    (v - v.round()).abs() <= INT_TOL
}

/// One frontier node: a bound overlay over the root problem plus the
/// parent's re-entrant tableau.
struct Node {
    /// Seniority: creation order, assigned at push time in deterministic
    /// merge order. The tie-break everywhere.
    id: u64,
    /// Best-bound key: the parent's relaxation objective (min sense);
    /// `-inf` for the root. A child's true bound can only be ≥ this.
    key: f64,
    depth: usize,
    /// `(lower, upper)` per original variable; branching only tightens
    /// these, so together with the shared root constraints they fully
    /// describe the node's subproblem.
    bounds: Vec<(f64, f64)>,
    /// Parent's optimal tableau with this node's branch row already
    /// appended, ready for dual-simplex re-entry (`None` → cold solve).
    warm: Option<WarmLp>,
}

impl Node {
    /// Clone the root with this node's bounds swapped in — only needed on
    /// the cold-solve path.
    fn materialize(&self, root: &Problem) -> Problem {
        let mut p = root.clone();
        for (var, &(lo, hi)) in p.vars.iter_mut().zip(&self.bounds) {
            var.lower = lo;
            var.upper = hi;
        }
        p
    }
}

/// Max-heap adapter popping the smallest (key, id) first.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: best (smallest) bound first, ties to the senior id.
        other.0.key.total_cmp(&self.0.key).then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// A child emitted by expanding a node (id assigned later, at merge).
struct ChildSpec {
    bounds: Vec<(f64, f64)>,
    warm: Option<WarmLp>,
}

/// What expanding one node concluded.
enum Verdict {
    /// Infeasible subproblem or bound dominated by the (frozen) incumbent.
    Pruned,
    /// Unbounded relaxation — fatal at the root, numerical noise (skip)
    /// below it.
    Unbounded,
    /// Abort the whole solve (model error, iteration limit on a cold
    /// solve).
    Fatal(LpError),
    /// The relaxation came out integral: an incumbent candidate.
    Integral { x: Vec<f64>, obj: f64 },
    /// Fractional: children to enqueue, keyed by this node's bound.
    Branched { bound: f64, children: Vec<ChildSpec> },
}

/// One expanded node's outcome, tagged with its batch slot and worker.
struct NodeOutcome {
    idx: usize,
    worker: usize,
    node_id: u64,
    depth: usize,
    pivots: usize,
    warm_hit: bool,
    verdict: Verdict,
}

/// Point feasibility against the root constraints + a node's bound
/// overlay — the overlay equivalent of `Problem::is_feasible` on a
/// materialized subproblem.
fn overlay_feasible(root: &Problem, bounds: &[(f64, f64)], x: &[f64]) -> bool {
    const TOL: f64 = 1e-6;
    if x.len() != bounds.len() {
        return false;
    }
    if x.iter().zip(bounds).any(|(&xi, &(lo, hi))| xi < lo - TOL || xi > hi + TOL) {
        return false;
    }
    root.constraints.iter().all(|c| {
        let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
        match c.cmp {
            crate::problem::Cmp::Le => lhs <= c.rhs + TOL,
            crate::problem::Cmp::Ge => lhs >= c.rhs - TOL,
            crate::problem::Cmp::Eq => (lhs - c.rhs).abs() <= TOL,
        }
    })
}

/// Expand one frontier node. Pure: the outcome depends only on the node,
/// the root problem, the options, and the round-frozen `cutoff` (current
/// incumbent min-objective, `+inf` when none) — never on the worker or on
/// timing. That purity is the entire determinism argument for the pool.
fn process_node(
    root: &Problem,
    int_vars: &[VarId],
    opts: &MilpOptions,
    mut node: Node,
    idx: usize,
    worker: usize,
    cutoff: f64,
) -> NodeOutcome {
    let to_min = |obj: f64| match root.sense() {
        Sense::Min => obj,
        Sense::Max => -obj,
    };
    let mut pivots = 0usize;
    let mut warm_hit = false;
    let mut early: Option<Verdict> = None;
    // Warm path: dual-simplex re-entry from the parent basis. Anything
    // suspect — iteration trouble, or a point that fails verification
    // against the node's own bounds — falls back to a cold solve below;
    // `Infeasible` is a sound verdict and prunes the node directly.
    let mut solved: Option<(Solution, Option<WarmLp>)> = None;
    if let Some(mut w) = node.warm.take() {
        match w.resolve(opts.warm_pivot_cap) {
            Ok(s) => {
                pivots += s.iterations;
                if overlay_feasible(root, &node.bounds, &s.x) {
                    warm_hit = true;
                    solved = Some((s, Some(w)));
                }
            }
            Err(e) => {
                pivots += w.iterations();
                if matches!(e, LpError::Infeasible) {
                    early = Some(Verdict::Pruned);
                }
            }
        }
    }
    if early.is_none() && solved.is_none() {
        let sub = node.materialize(root);
        let cold = if opts.warm_start {
            solve_lp_warm(&sub).map(|(s, w)| (s, Some(w)))
        } else {
            solve_lp(&sub).map(|s| (s, None))
        };
        match cold {
            Ok((s, w)) => {
                pivots += s.iterations;
                solved = Some((s, w));
            }
            Err(LpError::Infeasible) => early = Some(Verdict::Pruned),
            Err(LpError::Unbounded) => early = Some(Verdict::Unbounded),
            Err(e) => early = Some(Verdict::Fatal(e)),
        }
    }
    let verdict = match (early, solved) {
        (Some(v), _) => v,
        (None, Some((relax, warm_state))) => {
            let bound = to_min(relax.objective);
            if bound >= cutoff - opts.abs_gap {
                Verdict::Pruned
            } else {
                // Most fractional integer variable.
                let branch_var =
                    int_vars.iter().copied().filter(|v| !is_int(relax.x[v.0])).max_by(|a, b| {
                        let fa = (relax.x[a.0] - relax.x[a.0].round()).abs();
                        let fb = (relax.x[b.0] - relax.x[b.0].round()).abs();
                        // total_cmp only, no tie-break: `max_by` already
                        // returns the LAST maximum, which is the behavior
                        // the recorded B&B exploration paths depend on.
                        fa.total_cmp(&fb)
                    });
                match branch_var {
                    None => {
                        // Integral point: snap integer coordinates exactly.
                        let mut x = relax.x;
                        for v in int_vars {
                            x[v.0] = x[v.0].round();
                        }
                        Verdict::Integral { x, obj: bound }
                    }
                    Some(v) => {
                        let val = relax.x[v.0];
                        let (lo, hi) = node.bounds[v.0];
                        let mut children = Vec::with_capacity(2);
                        // Down branch (x ≤ floor) first: it gets the senior
                        // child id, so equal-bound ties explore the often
                        // cheaper side first.
                        let dn_hi = hi.min(val.floor());
                        if lo <= dn_hi {
                            let mut b = node.bounds.clone();
                            b[v.0] = (lo, dn_hi);
                            let warm = warm_state.as_ref().map(|w| w.child(v.0, true, val.floor()));
                            children.push(ChildSpec { bounds: b, warm });
                        }
                        let up_lo = lo.max(val.ceil());
                        if up_lo <= hi {
                            let mut b = node.bounds;
                            b[v.0] = (up_lo, hi);
                            let warm = warm_state.as_ref().map(|w| w.child(v.0, false, val.ceil()));
                            children.push(ChildSpec { bounds: b, warm });
                        }
                        Verdict::Branched { bound, children }
                    }
                }
            }
        }
        (None, None) => unreachable!("every path sets a verdict or a solution"),
    };
    NodeOutcome { idx, worker, node_id: node.id, depth: node.depth, pivots, warm_hit, verdict }
}

/// Current incumbent: point, min-sense objective, and the id of the node
/// that produced it (the replacement tie-break).
struct Incumbent {
    x: Vec<f64>,
    obj: f64,
    id: u64,
}

/// Deterministic frontier engine: batch building, merging, termination.
/// Batch *execution* is delegated to a closure so the in-line and pooled
/// paths share every decision that affects the result.
struct Engine<'a> {
    root: &'a Problem,
    opts: &'a MilpOptions,
    heap: BinaryHeap<HeapNode>,
    incumbent: Option<Incumbent>,
    next_id: u64,
    nodes: usize,
    pivots: usize,
    warm_hits: usize,
    rounds: usize,
    exhausted: bool,
    per_worker: Vec<WorkerCounters>,
}

impl<'a> Engine<'a> {
    fn new(root: &'a Problem, opts: &'a MilpOptions, workers: usize) -> Self {
        let bounds = root.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(Node { id: 0, key: f64::NEG_INFINITY, depth: 0, bounds, warm: None }));
        Engine {
            root,
            opts,
            heap,
            incumbent: None,
            next_id: 1,
            nodes: 0,
            pivots: 0,
            warm_hits: 0,
            rounds: 0,
            exhausted: false,
            per_worker: vec![WorkerCounters::default(); workers],
        }
    }

    /// Round-frozen prune cutoff: the incumbent's min-sense objective.
    fn cutoff(&self) -> f64 {
        self.incumbent.as_ref().map_or(f64::INFINITY, |inc| inc.obj)
    }

    /// Pop the next batch in (bound, seniority) order. Returns the batch
    /// plus whether the node budget stopped it with work still queued.
    fn build_batch(&mut self) -> (Vec<Node>, bool) {
        let mut batch = Vec::new();
        let mut hit_budget = false;
        while batch.len() < FRONTIER_BATCH {
            let Some(top) = self.heap.peek() else { break };
            if let Some(inc) = &self.incumbent {
                if top.0.key >= inc.obj - self.opts.abs_gap {
                    // Best-bound order: the top dominates the whole heap,
                    // so everything left is pruned — the proof is done.
                    self.heap.clear();
                    break;
                }
            }
            if self.nodes >= self.opts.max_nodes {
                hit_budget = true;
                break;
            }
            let node = self.heap.pop().expect("peeked Some").0;
            self.nodes += 1;
            batch.push(node);
        }
        (batch, hit_budget)
    }

    /// Commutative incumbent replacement: strictly better objective wins,
    /// exact ties go to the senior (smaller) node id — a lattice min over
    /// (objective, id), so any merge order yields the same incumbent.
    fn offer_incumbent(&mut self, x: Vec<f64>, obj: f64, id: u64) {
        let better = match &self.incumbent {
            None => true,
            Some(inc) => obj < inc.obj || (obj == inc.obj && id < inc.id),
        };
        if better {
            self.incumbent = Some(Incumbent { x, obj, id });
        }
    }

    /// Fold one round's outcomes in batch (pop) order: counters, incumbent
    /// candidates, then children — ids assigned in this deterministic
    /// order, and children already dominated by the merged incumbent are
    /// dropped (their key only ever loses to a cutoff that only improves).
    fn merge(&mut self, outcomes: Vec<NodeOutcome>) -> Result<(), LpError> {
        for out in outcomes {
            let pw = &mut self.per_worker[out.worker];
            pw.nodes += 1;
            if out.worker != 0 {
                pw.steals += 1;
            }
            self.pivots += out.pivots;
            if out.warm_hit {
                self.warm_hits += 1;
            }
            match out.verdict {
                Verdict::Pruned => {}
                Verdict::Unbounded => {
                    // Unbounded relaxation at the root means the MILP
                    // itself is unbounded (or has unbounded relaxation —
                    // we surface it); deeper it is numerical noise.
                    if out.depth == 0 {
                        return Err(LpError::Unbounded);
                    }
                }
                Verdict::Fatal(e) => return Err(e),
                Verdict::Integral { x, obj } => self.offer_incumbent(x, obj, out.node_id),
                Verdict::Branched { bound, children } => {
                    for c in children {
                        if let Some(inc) = &self.incumbent {
                            if bound >= inc.obj - self.opts.abs_gap {
                                continue;
                            }
                        }
                        let id = self.next_id;
                        self.next_id += 1;
                        self.heap.push(HeapNode(Node {
                            id,
                            key: bound,
                            depth: out.depth + 1,
                            bounds: c.bounds,
                            warm: c.warm,
                        }));
                    }
                }
            }
        }
        Ok(())
    }

    /// Drive rounds to termination. `run_batch` executes one popped batch
    /// and returns outcomes **in batch order**; everything that affects
    /// the result happens here or in [`process_node`], so in-line and
    /// pooled execution cannot diverge.
    fn run<F>(mut self, mut run_batch: F) -> Result<MilpSolution, LpError>
    where
        F: FnMut(Vec<Node>, f64) -> Vec<NodeOutcome>,
    {
        loop {
            let (batch, hit_budget) = self.build_batch();
            if batch.is_empty() {
                self.exhausted = hit_budget;
                break;
            }
            self.rounds += 1;
            let cutoff = self.cutoff();
            let outcomes = run_batch(batch, cutoff);
            self.merge(outcomes)?;
        }
        match self.incumbent {
            Some(inc) => {
                let objective = match self.root.sense() {
                    Sense::Min => inc.obj,
                    Sense::Max => -inc.obj,
                };
                let status = if self.exhausted { Status::BudgetExhausted } else { Status::Optimal };
                Ok(MilpSolution {
                    x: inc.x,
                    objective,
                    status,
                    nodes: self.nodes,
                    pivots: self.pivots,
                    warm_hits: self.warm_hits,
                    rounds: self.rounds,
                    per_worker: self.per_worker,
                })
            }
            None if self.exhausted => Err(LpError::NoIncumbent),
            None => Err(LpError::Infeasible),
        }
    }
}

/// Mutex-guarded round state for the worker pool. One generation = one
/// frontier round; every slot claim is validated against the generation it
/// was made for, so a worker that wakes up late can never touch a newer
/// round's batch (or read a newer round's incumbent and then claim an old
/// node — the claim would fail the generation check).
struct RoundState {
    /// Round generation. Bumped by the coordinator when a fresh batch is
    /// published; workers sleep until it moves.
    gen: u64,
    /// Work-sharing cursor into `slots`.
    next: usize,
    /// The published batch; claimed slots are `take()`n.
    slots: Vec<Option<Node>>,
    /// Terminal flag: set once, wakes every worker for the last time.
    done: bool,
}

/// Shared pool context. The coordinator publishes a round (slots +
/// incumbent bits + generation bump) and then races its own greedy grab
/// loop against the pool; it never *waits* for workers — on a saturated
/// machine the pool threads simply stay parked on `round_start` and the
/// coordinator answers the whole batch itself, so an idle pool costs at
/// most a few condvar notifies per round (and none at all past the warmup
/// rounds on a host with no spare cores — see [`solve_milp`]).
struct RoundShared<'a> {
    root: &'a Problem,
    int_vars: &'a [VarId],
    opts: &'a MilpOptions,
    /// Round-frozen incumbent min-objective as f64 bits (`+inf` when
    /// none). Written only while publishing a round, read by each claimant
    /// once per generation — see the ordering argument in [`solve_milp`].
    incumbent_bits: AtomicU64,
    state: Mutex<RoundState>,
    /// Workers park here between rounds; notified on publish and shutdown.
    round_start: Condvar,
}

impl RoundShared<'_> {
    /// Claim the next unclaimed slot of generation `gen`, or `None` when
    /// the round is drained (or was already replaced by a newer one).
    fn claim(&self, gen: u64) -> Option<(usize, Node)> {
        let mut st = self.state.lock().expect("round state mutex");
        if st.gen != gen || st.next >= st.slots.len() {
            return None;
        }
        let idx = st.next;
        st.next += 1;
        let node = st.slots[idx].take().expect("slot below cursor is unclaimed");
        Some((idx, node))
    }
}

fn worker_loop(shared: &RoundShared<'_>, tx: mpsc::Sender<NodeOutcome>, worker: usize) {
    let mut seen = 0u64;
    loop {
        let gen = {
            let mut st = shared.state.lock().expect("round state mutex");
            loop {
                if st.done {
                    return;
                }
                if st.gen != seen {
                    break st.gen;
                }
                st = shared.round_start.wait(st).expect("round state mutex");
            }
        };
        seen = gen;
        // Safe to read outside the lock: a successful claim below proves
        // round `gen` was still incomplete at read time, and the
        // coordinator only rewrites these bits after a round completes.
        // ordering: Acquire — pairs with the coordinator's Release store;
        // observing the generation bump under the lock happens-after that
        // store, so this load sees the round's frozen cutoff bits.
        let cutoff = f64::from_bits(shared.incumbent_bits.load(Ordering::Acquire));
        while let Some((idx, node)) = shared.claim(gen) {
            let out =
                process_node(shared.root, shared.int_vars, shared.opts, node, idx, worker, cutoff);
            // The coordinator may have aborted and stopped receiving; a
            // closed channel just means this result is no longer needed.
            let _ = tx.send(out);
        }
    }
}

/// Solve a mixed-integer linear program by LP-based branch-and-bound:
/// best-bound-first exploration with most-fractional branching, fanned out
/// over [`MilpOptions::threads`] workers in deterministic synchronous
/// rounds (see the module docs for the reduction rule — results are
/// bit-identical at every thread count).
///
/// Returns [`LpError::Infeasible`]/[`LpError::Unbounded`] when the root
/// relaxation already proves it, and [`LpError::NoIncumbent`] when the node
/// budget runs out before any integral point is found.
pub fn solve_milp(p: &Problem, opts: MilpOptions) -> Result<MilpSolution, LpError> {
    p.validate()?;
    let int_vars = p.integer_vars();
    // Pure LP: one relaxation solve is the answer.
    if int_vars.is_empty() {
        let s = solve_lp(p)?;
        return Ok(MilpSolution {
            objective: s.objective,
            pivots: s.iterations,
            x: s.x,
            status: Status::Optimal,
            nodes: 1,
            warm_hits: 0,
            rounds: 0,
            per_worker: Vec::new(),
        });
    }

    let workers = crate::par::resolve_workers(opts.threads, FRONTIER_BATCH);
    let engine = Engine::new(p, &opts, workers);
    // A pool thread that can never run while the coordinator runs is pure
    // context-switch tax, so release builds on a host without a spare core
    // keep the frontier in-line — identical results by construction, the
    // per-worker split just attributes every node to the coordinator.
    // Debug builds always drive the full pool protocol, so the test tier
    // exercises the concurrent claim path on any host.
    let pool_enabled = cfg!(debug_assertions) || crate::par::hardware_threads() > 1;
    if workers <= 1 || !pool_enabled {
        return engine.run(|batch, cutoff| {
            batch
                .into_iter()
                .enumerate()
                .map(|(idx, node)| process_node(p, &int_vars, &opts, node, idx, 0, cutoff))
                .collect()
        });
    }

    let shared = RoundShared {
        root: p,
        int_vars: &int_vars,
        opts: &opts,
        incumbent_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        state: Mutex::new(RoundState { gen: 0, next: 0, slots: Vec::new(), done: false }),
        round_start: Condvar::new(),
    };
    let (tx, rx) = mpsc::channel::<NodeOutcome>();
    // A woken helper can only overlap with the coordinator when the host
    // has a spare hardware thread; on a single-core host a wake is pure
    // context-switch tax. Still wake the pool for the first few published
    // rounds there, so the concurrent claim path runs end-to-end on every
    // host (the equivalence tests rely on that), then let the pool sleep.
    let spare_cores = crate::par::hardware_threads().saturating_sub(1);
    const WAKE_WARMUP_ROUNDS: u64 = 2;
    std::thread::scope(|s| {
        // The coordinator doubles as worker 0; only workers − 1 pool
        // threads are spawned.
        for w in 1..workers {
            let tx = tx.clone();
            let shared = &shared;
            s.spawn(move || worker_loop(shared, tx, w));
        }
        drop(tx);
        let result = engine.run(|batch, cutoff| {
            let k = batch.len();
            // A one-node round has no parallelism to share; process it
            // in-line without waking the pool. Results are identical
            // either way: same pure process_node call, and worker-0
            // attribution matches what the greedy coordinator grab would
            // assign a solo batch anyway.
            if k == 1 {
                let node = batch.into_iter().next().expect("k == 1");
                return vec![process_node(p, &int_vars, &opts, node, 0, 0, cutoff)];
            }
            // Publish the round: incumbent bits first, then slots +
            // generation bump under the lock. Any worker that goes on to
            // claim a slot of this generation observed the bump under the
            // lock *after* this store, so it pruned against exactly this
            // round's frozen cutoff.
            // ordering: Release — pairs with the workers' Acquire load
            // above; the lock-protected generation bump that follows makes
            // the store visible before any slot of this round is claimed.
            shared.incumbent_bits.store(cutoff.to_bits(), Ordering::Release);
            let gen = {
                let mut st = shared.state.lock().expect("round state mutex");
                st.slots = batch.into_iter().map(Some).collect();
                st.next = 0;
                st.gen += 1;
                st.gen
            };
            // One helper per node beyond the coordinator's own, bounded by
            // the pool and (past warmup) by spare cores. Waking fewer
            // helpers than the pool holds never changes the result — an
            // unwoken worker is just one that never wins a claim.
            let helpers = (k - 1).min(workers - 1);
            let wake = if gen <= WAKE_WARMUP_ROUNDS { helpers } else { helpers.min(spare_cores) };
            for _ in 0..wake {
                shared.round_start.notify_one();
            }
            let mut out: Vec<Option<NodeOutcome>> = (0..k).map(|_| None).collect();
            let mut filled = 0usize;
            // Greedy coordinator grab loop — worker 0. On a machine with
            // fewer free cores than workers this thread typically keeps
            // the CPU and answers most of the batch itself; parked pool
            // threads only take slots when there is genuine spare
            // parallelism, and the coordinator never blocks waiting for a
            // worker unless that worker actually holds a claimed node.
            while let Some((idx, node)) = shared.claim(gen) {
                let o = process_node(p, &int_vars, &opts, node, idx, 0, cutoff);
                out[idx] = Some(o);
                filled += 1;
            }
            while filled < k {
                let o = rx.recv().expect("a worker answers every claimed slot");
                let idx = o.idx;
                out[idx] = Some(o);
                filled += 1;
            }
            // All k outcomes are in, so no claim of this generation is
            // outstanding — the next publish can safely replace the batch.
            out.into_iter().map(|o| o.expect("every slot answered")).collect()
        });
        {
            let mut st = shared.state.lock().expect("round state mutex");
            st.done = true;
        }
        shared.round_start.notify_all();
        result
    })
}

/// Convenience: solve and return only the point and objective, erroring on
/// budget exhaustion without incumbent.
pub fn solve_milp_simple(p: &Problem) -> Result<Solution, LpError> {
    let s = solve_milp(p, MilpOptions::default())?;
    Ok(Solution { x: s.x, objective: s.objective, iterations: s.nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 5a + 4b + 3c, 2a + 3b + c ≤ 5, binaries → a=1, c=1 … check:
        // a+c uses 3, add b? 2+3+1=6 > 5. Best is a=1,c=1 (8) vs a=1,b=1
        // (9, weight 5 ✓). Optimum 9.
        let mut p = Problem::new(Sense::Max);
        let a = p.add_bin_var("a", 5.0);
        let b = p.add_bin_var("b", 4.0);
        let c = p.add_bin_var("c", 3.0);
        p.add_constraint("w", vec![(a, 2.0), (b, 3.0), (c, 1.0)], Cmp::Le, 5.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 9.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.x[2], 0.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x ≤ 7, x integer → 3 (relaxation gives 3.5).
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint("c", vec![(x, 2.0)], Cmp::Le, 7.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer ≤ 2.5 constraint, y ≤ 1.7 continuous.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_int_var("x", 0.0, f64::INFINITY, 2.0);
        let _y = p.add_var("y", 0.0, 1.7, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], Cmp::Le, 2.5);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.0 * 2.0 + 1.7);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6, x integer: LP feasible, MILP infeasible.
        let mut p = Problem::new(Sense::Min);
        let _x = p.add_int_var("x", 0.4, 0.6, 1.0);
        assert_eq!(solve_milp(&p, MilpOptions::default()), Err(LpError::Infeasible));
    }

    #[test]
    fn equality_milp() {
        // min x + y s.t. x + y = 5, both integers in [0,5]: objective 5,
        // many optima — check feasibility and integrality instead of point.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 5.0, 1.0);
        let y = p.add_int_var("y", 0.0, 5.0, 1.0);
        p.add_constraint("e", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 5.0);
        assert!(is_int(s.x[0]) && is_int(s.x[1]));
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn budget_exhaustion_reports_status() {
        // A 10-item knapsack with a 1-node budget cannot finish.
        let mut p = Problem::new(Sense::Max);
        let vars: Vec<_> =
            (0..10).map(|i| p.add_bin_var(format!("v{i}"), (i + 1) as f64)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        p.add_constraint("w", terms, Cmp::Le, 9.0);
        match solve_milp(&p, MilpOptions { max_nodes: 1, ..MilpOptions::default() }) {
            Err(LpError::NoIncumbent) => {}
            Ok(s) => assert_eq!(s.status, Status::BudgetExhausted),
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn assignment_problem_integral() {
        // 2×2 assignment: min cost matrix [[1, 10], [10, 1]]; x_ij binary,
        // each row/col sums to 1 → diagonal, cost 2.
        let mut p = Problem::new(Sense::Min);
        let x00 = p.add_bin_var("x00", 1.0);
        let x01 = p.add_bin_var("x01", 10.0);
        let x10 = p.add_bin_var("x10", 10.0);
        let x11 = p.add_bin_var("x11", 1.0);
        p.add_constraint("r0", vec![(x00, 1.0), (x01, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("r1", vec![(x10, 1.0), (x11, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("c0", vec![(x00, 1.0), (x10, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint("c1", vec![(x01, 1.0), (x11, 1.0)], Cmp::Eq, 1.0);
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[3], 1.0);
    }

    #[test]
    fn warm_start_matches_cold_on_knapsack() {
        // The same MILP solved warm and cold must agree on objective and
        // status; warm should actually use the dual re-entry path.
        let mut p = Problem::new(Sense::Max);
        let vars: Vec<_> =
            (0..8).map(|i| p.add_bin_var(format!("v{i}"), ((i * 7) % 5 + 1) as f64)).collect();
        let terms: Vec<_> =
            vars.iter().enumerate().map(|(i, &v)| (v, ((i % 3) + 1) as f64)).collect();
        p.add_constraint("w", terms, Cmp::Le, 7.0);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(cold.status, Status::Optimal);
        assert_close(warm.objective, cold.objective);
        assert!(p.is_feasible(&warm.x, 1e-6));
        assert!(warm.warm_hits > 0, "dual re-entry never fired");
        assert_eq!(cold.warm_hits, 0);
    }

    #[test]
    fn warm_start_matches_cold_on_mixed_equality() {
        // Equality rows + continuous vars exercise artificials and the
        // Shifted/ub-row mapping under warm re-entry.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 6.0, 1.0);
        let y = p.add_int_var("y", 0.0, 6.0, 2.0);
        let z = p.add_var("z", 0.0, 3.5, 0.5);
        p.add_constraint("e", vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 7.5);
        p.add_constraint("g", vec![(y, 1.0), (z, -1.0)], Cmp::Ge, 0.5);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(p.is_feasible(&warm.x, 1e-6));
        assert!(is_int(warm.x[0]) && is_int(warm.x[1]));
    }

    #[test]
    fn warm_start_agrees_infeasible() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 10.0, 1.0);
        let y = p.add_int_var("y", 0.0, 10.0, 1.0);
        // 2x + 2y = 7 has no integral solution.
        p.add_constraint("e", vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 7.0);
        assert_eq!(solve_milp(&p, MilpOptions::default()), Err(LpError::Infeasible));
        assert_eq!(
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }),
            Err(LpError::Infeasible)
        );
    }

    #[test]
    fn pure_lp_shortcut() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 2.5, 1.0);
        let _ = x;
        let s = solve_milp(&p, MilpOptions::default()).unwrap();
        assert_close(s.objective, 2.5);
        assert_eq!(s.nodes, 1);
    }

    /// Pool smoke test: every thread count returns bit-identical results
    /// on a knapsack whose tree spans several rounds. (The exhaustive
    /// version is the `parallel_equiv` proptest suite.)
    #[test]
    fn thread_counts_are_bit_identical() {
        let mut p = Problem::new(Sense::Max);
        let vars: Vec<_> =
            (0..12).map(|i| p.add_bin_var(format!("v{i}"), ((i * 13) % 7 + 1) as f64)).collect();
        let terms: Vec<_> =
            vars.iter().enumerate().map(|(i, &v)| (v, ((i * 5) % 4 + 1) as f64)).collect();
        p.add_constraint("w", terms, Cmp::Le, 10.0);
        let base = solve_milp(&p, MilpOptions { threads: 1, ..MilpOptions::default() }).unwrap();
        assert!(base.rounds > 1, "instance too small to exercise rounds");
        for threads in [2usize, 4, 8] {
            let par = solve_milp(&p, MilpOptions { threads, ..MilpOptions::default() }).unwrap();
            assert_eq!(par.objective.to_bits(), base.objective.to_bits(), "threads={threads}");
            assert_eq!(par.x, base.x, "threads={threads}");
            assert_eq!(par.nodes, base.nodes, "threads={threads}");
            assert_eq!(par.pivots, base.pivots, "threads={threads}");
            assert_eq!(par.warm_hits, base.warm_hits, "threads={threads}");
            assert_eq!(par.rounds, base.rounds, "threads={threads}");
            assert_eq!(par.status, base.status, "threads={threads}");
            // The per-worker split is scheduling-dependent, but it must
            // cover exactly the explored nodes across however many workers
            // actually ran.
            assert_eq!(par.per_worker.len(), threads);
            let split: u64 = par.per_worker.iter().map(|w| w.nodes).sum();
            assert_eq!(split as usize, par.nodes, "threads={threads}");
        }
        let single: u64 = base.per_worker.iter().map(|w| w.steals).sum();
        assert_eq!(single, 0, "in-line path cannot steal");
    }
}
