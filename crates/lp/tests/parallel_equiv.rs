//! Equivalence tier for the parallel branch-and-bound engine.
//!
//! The engine's contract is *bit-for-bit determinism*: at every thread
//! count, the same MILP must yield the identical objective, the identical
//! variable assignment, and the identical explored tree (node, pivot,
//! warm-hit, and round counts). These property tests drive randomly
//! generated feasible-by-construction MILPs through `threads ∈ {2, 4, 8}`
//! and compare every field against the `threads = 1` reference — any
//! scheduling-dependent pruning, incumbent race, or merge-order leak shows
//! up as a counterexample here.

use dsp_lp::{solve_milp, Cmp, LpError, MilpOptions, Problem, Sense};
use proptest::prelude::*;

/// Build `min c·x  s.t.  A x ≤ b, 0 ≤ x ≤ 10, x integral` where
/// `b = A·x0 + slack` for an integral witness `x0` — a feasible MILP by
/// construction. Same scheme as `tests/prop.rs`.
fn feasible_milp(
    n: usize,
    m: usize,
    a_vals: &[i32],
    x0_vals: &[i32],
    c_vals: &[i32],
    slack: &[i32],
) -> Problem {
    let mut p = Problem::new(Sense::Min);
    let x0: Vec<f64> = (0..n).map(|i| (x0_vals[i % x0_vals.len()].rem_euclid(11)) as f64).collect();
    let c: Vec<f64> = (0..n).map(|i| (c_vals[i % c_vals.len()] % 7) as f64).collect();
    let vars: Vec<_> = (0..n).map(|i| p.add_int_var(format!("x{i}"), 0.0, 10.0, c[i])).collect();
    for r in 0..m {
        let coeffs: Vec<f64> =
            (0..n).map(|i| (a_vals[(r * n + i) % a_vals.len()] % 5) as f64).collect();
        let lhs0: f64 = coeffs.iter().zip(&x0).map(|(a, x)| a * x).sum();
        let b = lhs0 + (slack[r % slack.len()].rem_euclid(4)) as f64;
        p.add_constraint(format!("c{r}"), vars.iter().copied().zip(coeffs).collect(), Cmp::Le, b);
    }
    p
}

/// Solve at a thread count and keep everything the determinism contract
/// covers (i.e. all of `MilpSolution` except the per-worker split).
fn fingerprint(p: &Problem, threads: usize) -> (Vec<u64>, u64, usize, usize, usize, usize) {
    let s = solve_milp(p, MilpOptions { threads, ..MilpOptions::default() })
        .expect("witness-constructed MILP is feasible");
    let x_bits = s.x.iter().map(|v| v.to_bits()).collect();
    (x_bits, s.objective.to_bits(), s.nodes, s.pivots, s.warm_hits, s.rounds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// threads ∈ {2, 4, 8} must replay the threads = 1 solve exactly:
    /// identical objective bits, identical assignment bits, identical
    /// explored-node count (plus pivots / warm hits / rounds for free).
    #[test]
    fn any_thread_count_replays_the_sequential_solve(
        n in 1usize..6,
        m in 1usize..6,
        a_vals in prop::collection::vec(-10i32..10, 1..36),
        x0_vals in prop::collection::vec(0i32..11, 1..6),
        c_vals in prop::collection::vec(-10i32..10, 1..6),
        slack in prop::collection::vec(0i32..4, 1..6),
    ) {
        let p = feasible_milp(n, m, &a_vals, &x0_vals, &c_vals, &slack);
        let reference = fingerprint(&p, 1);
        for threads in [2usize, 4, 8] {
            let par = fingerprint(&p, threads);
            prop_assert_eq!(
                &par, &reference,
                "threads={} diverged from sequential: {:?} vs {:?}",
                threads, par, reference
            );
        }
    }

    /// Infeasible MILPs (integrality gap with no integral point) must be
    /// proven infeasible identically at every thread count — the pruning
    /// proof, not just the incumbent, has to be scheduling-independent.
    #[test]
    fn infeasibility_proofs_agree_across_thread_counts(
        n in 1usize..4,
        denom in 2i32..5,
    ) {
        // Each variable is boxed strictly between two integers
        // (k + 1/denom .. k + 1 - 1/denom), so no integral point exists.
        let mut p = Problem::new(Sense::Min);
        for i in 0..n {
            let k = i as f64;
            let eps = 1.0 / f64::from(denom);
            p.add_int_var(format!("x{i}"), k + eps, k + 1.0 - eps * 0.5, 1.0);
        }
        for threads in [1usize, 2, 4, 8] {
            let r = solve_milp(&p, MilpOptions { threads, ..MilpOptions::default() });
            prop_assert_eq!(
                r.as_ref().err(),
                Some(&LpError::Infeasible),
                "threads={} returned {:?}", threads, r
            );
        }
    }
}
