//! Warm-start effectiveness: dual re-entry must agree with cold solves and
//! should not pivot more in total on representative instances.

use dsp_lp::{solve_milp, Cmp, MilpOptions, Problem, Sense, Status};

fn knapsack(items: usize) -> Problem {
    let mut p = Problem::new(Sense::Max);
    let vars: Vec<_> =
        (0..items).map(|i| p.add_bin_var(format!("v{i}"), ((i * 13) % 7 + 1) as f64)).collect();
    let terms: Vec<_> =
        vars.iter().enumerate().map(|(i, &v)| (v, ((i * 5) % 4 + 1) as f64)).collect();
    p.add_constraint("w", terms, Cmp::Le, (items as f64) * 0.9);
    p
}

/// Force every dual re-entry to fail and verify the cold-solve fallback.
///
/// A branch row is always violated at the parent optimum (the branched
/// variable sits strictly between floor and ceil), so restoring primal
/// feasibility needs at least one dual pivot — `warm_pivot_cap: Some(0)`
/// therefore makes *every* warm re-entry hit its iteration limit, which is
/// exactly the dual-infeasible-abort path. The engine must take the cold
/// fallback at each node and land on the same proven objective (and the
/// same tree: a capped run degenerates to the `warm_start: false` run,
/// since a from-scratch `solve_lp` and a warm `solve_lp_warm` produce
/// identical solutions).
#[test]
fn capped_warm_reentry_falls_back_to_cold_with_same_objective() {
    for items in [8usize, 12, 16] {
        let p = knapsack(items);
        let capped =
            solve_milp(&p, MilpOptions { warm_pivot_cap: Some(0), ..MilpOptions::default() })
                .unwrap();
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let scratch =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        // Fallback taken at every node: no warm hit survives the cap...
        assert_eq!(capped.warm_hits, 0, "items={items}: a capped re-entry still hit");
        // ...but the uncapped engine does warm-start on the same instance,
        // so the cap is what forced the fallback.
        assert!(warm.warm_hits > 0, "items={items}: control run never warm-started");
        // Same proven objective as solving each node from scratch, and the
        // identical tree (the fallback replays the cold solve bit-for-bit).
        assert_eq!(capped.objective.to_bits(), scratch.objective.to_bits(), "items={items}");
        assert_eq!(capped.x, scratch.x, "items={items}");
        assert_eq!(capped.nodes, scratch.nodes, "items={items}");
        assert_eq!(capped.status, Status::Optimal);
        // Each aborted re-entry burns its pivots before giving up, so the
        // capped run pays strictly more than from-scratch on an instance
        // that actually branches — evidence the warm path genuinely ran
        // and failed rather than being skipped.
        assert!(
            capped.pivots > scratch.pivots,
            "items={items}: capped {} vs scratch {}",
            capped.pivots,
            scratch.pivots
        );
    }
}

#[test]
fn warm_reduces_pivots_on_knapsacks() {
    for items in [8usize, 12, 16] {
        let p = knapsack(items);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        println!(
            "items={items} nodes={}/{} pivots warm={} cold={} hits={}",
            warm.nodes, cold.nodes, warm.pivots, cold.pivots, warm.warm_hits
        );
        assert!(warm.pivots <= cold.pivots, "warm start pivoted more than cold");
    }
}
