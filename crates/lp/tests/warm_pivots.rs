//! Warm-start effectiveness: dual re-entry must agree with cold solves and
//! should not pivot more in total on representative instances.

use dsp_lp::{solve_milp, Cmp, MilpOptions, Problem, Sense, Status};

fn knapsack(items: usize) -> Problem {
    let mut p = Problem::new(Sense::Max);
    let vars: Vec<_> =
        (0..items).map(|i| p.add_bin_var(format!("v{i}"), ((i * 13) % 7 + 1) as f64)).collect();
    let terms: Vec<_> =
        vars.iter().enumerate().map(|(i, &v)| (v, ((i * 5) % 4 + 1) as f64)).collect();
    p.add_constraint("w", terms, Cmp::Le, (items as f64) * 0.9);
    p
}

#[test]
fn warm_reduces_pivots_on_knapsacks() {
    for items in [8usize, 12, 16] {
        let p = knapsack(items);
        let warm = solve_milp(&p, MilpOptions::default()).unwrap();
        let cold =
            solve_milp(&p, MilpOptions { warm_start: false, ..MilpOptions::default() }).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        println!(
            "items={items} nodes={}/{} pivots warm={} cold={} hits={}",
            warm.nodes, cold.nodes, warm.pivots, cold.pivots, warm.warm_hits
        );
        assert!(warm.pivots <= cold.pivots, "warm start pivoted more than cold");
    }
}
