//! Property tests for the LP/MILP solver: on randomly generated
//! feasible-by-construction programs, the simplex must return a feasible
//! point at least as good as the construction witness, and branch-and-bound
//! must respect integrality and never beat the relaxation.

use dsp_lp::{solve_lp, solve_milp, Cmp, MilpOptions, Problem, Sense};
use proptest::prelude::*;

/// Build `min c·x  s.t.  A x ≤ b, 0 ≤ x ≤ 10` where `b = A·x0 + slack` for
/// a known witness `x0` — feasible by construction.
fn feasible_lp(
    n: usize,
    m: usize,
    a_vals: &[i32],
    x0_vals: &[i32],
    c_vals: &[i32],
    slack: &[i32],
) -> (Problem, Vec<f64>, f64) {
    let mut p = Problem::new(Sense::Min);
    let x0: Vec<f64> = (0..n).map(|i| (x0_vals[i % x0_vals.len()].rem_euclid(11)) as f64).collect();
    let c: Vec<f64> = (0..n).map(|i| (c_vals[i % c_vals.len()] % 7) as f64).collect();
    let vars: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"), 0.0, 10.0, c[i])).collect();
    for r in 0..m {
        let coeffs: Vec<f64> =
            (0..n).map(|i| (a_vals[(r * n + i) % a_vals.len()] % 5) as f64).collect();
        let lhs0: f64 = coeffs.iter().zip(&x0).map(|(a, x)| a * x).sum();
        let b = lhs0 + (slack[r % slack.len()].rem_euclid(4)) as f64;
        p.add_constraint(format!("c{r}"), vars.iter().copied().zip(coeffs).collect(), Cmp::Le, b);
    }
    let witness_obj = c.iter().zip(&x0).map(|(ci, xi)| ci * xi).sum();
    (p, x0, witness_obj)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn simplex_beats_witness_and_stays_feasible(
        n in 1usize..6,
        m in 1usize..6,
        a_vals in prop::collection::vec(-10i32..10, 1..36),
        x0_vals in prop::collection::vec(0i32..11, 1..6),
        c_vals in prop::collection::vec(-10i32..10, 1..6),
        slack in prop::collection::vec(0i32..4, 1..6),
    ) {
        let (p, x0, witness_obj) = feasible_lp(n, m, &a_vals, &x0_vals, &c_vals, &slack);
        let sol = solve_lp(&p).expect("constructed LP is feasible and bounded (box vars)");
        prop_assert!(p.is_feasible(&sol.x, 1e-6), "infeasible answer {:?}", sol.x);
        prop_assert!(
            sol.objective <= witness_obj + 1e-6,
            "optimum {} worse than witness {} at {:?}",
            sol.objective, witness_obj, x0
        );
    }

    #[test]
    fn milp_is_integral_feasible_and_bounded_by_relaxation(
        n in 1usize..5,
        m in 1usize..5,
        a_vals in prop::collection::vec(0i32..5, 1..25),
        x0_vals in prop::collection::vec(0i32..4, 1..5),
        c_vals in prop::collection::vec(-5i32..5, 1..5),
        slack in prop::collection::vec(0i32..4, 1..5),
    ) {
        let (mut p, _x0, _w) = feasible_lp(n, m, &a_vals, &x0_vals, &c_vals, &slack);
        // Mark every variable integral (bounds [0,10] keep it finite).
        for i in 0..p.num_vars() {
            p.vars_make_integer_for_test(i);
        }
        let relax = solve_lp(&p).expect("relaxation feasible");
        let milp = solve_milp(&p, MilpOptions::default()).expect("integral point exists (x0 integral)");
        prop_assert!(p.is_feasible(&milp.x, 1e-6));
        for &xi in &milp.x {
            prop_assert!((xi - xi.round()).abs() < 1e-6, "non-integral {xi}");
        }
        // Minimization: the MILP optimum can never beat its relaxation.
        prop_assert!(milp.objective >= relax.objective - 1e-6);
    }
}
