//! Workspace umbrella crate.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; the actual library
//! surface lives in the `crates/` workspace members, re-exported here for
//! convenience so `dsp_repro::…` reaches everything.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use dsp_cluster as cluster;
pub use dsp_core as core;
pub use dsp_dag as dag;
pub use dsp_lp as lp;
pub use dsp_metrics as metrics;
pub use dsp_preempt as preempt;
pub use dsp_sched as sched;
pub use dsp_sim as sim;
pub use dsp_trace as trace;
pub use dsp_units as units;
